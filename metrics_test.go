package evogame

// The flat Metrics export (satellite of the batch-kernel PR) must be
// populated by both engines, agree with the result's own event counters,
// and attribute games to the kernel that actually ran them.

import (
	"context"
	"testing"
)

func TestSerialMetricsPopulated(t *testing.T) {
	cfg := SimulationConfig{
		NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 40,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 11,
		Kernel: "batch",
	}
	res, err := Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Generations != cfg.Generations {
		t.Errorf("Metrics.Generations = %d, want %d", m.Generations, cfg.Generations)
	}
	if m.PCEvents != res.PCEvents || m.Adoptions != res.Adoptions || m.Mutations != res.Mutations {
		t.Errorf("Metrics events %d/%d/%d disagree with result %d/%d/%d",
			m.PCEvents, m.Adoptions, m.Mutations, res.PCEvents, res.Adoptions, res.Mutations)
	}
	if got := m.ScalarGames + m.CycleGames + m.BatchGames; got != res.GamesPlayed {
		t.Errorf("kernel mix sums to %d games, result played %d", got, res.GamesPlayed)
	}
	if m.BatchGames <= 0 || m.BatchCalls <= 0 {
		t.Errorf("forced batch kernel recorded no batch work: %+v", m)
	}
	if occ := m.BatchLaneOccupancy(); occ <= 0 || occ > 1 {
		t.Errorf("BatchLaneOccupancy = %v, want in (0, 1]", occ)
	}
	// The serial engine's per-event cache is a plain map, not the
	// persistent fitness.PairCache, so its cache counters stay zero.
	if m.CachePlays != 0 || m.CacheHits != 0 {
		t.Errorf("serial run unexpectedly recorded PairCache traffic: %+v", m)
	}
}

func TestParallelMetricsPopulated(t *testing.T) {
	cfg := ParallelConfig{
		Ranks: 4, OptimizationLevel: 3, NumSSets: 24, AgentsPerSSet: 2,
		MemorySteps: 1, Rounds: 40, PCRate: 1, MutationRate: 0.25, Beta: 1,
		Generations: 60, Seed: 777, Kernel: "batch",
	}
	res, err := SimulateParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Generations != cfg.Generations {
		t.Errorf("Metrics.Generations = %d, want %d", m.Generations, cfg.Generations)
	}
	if m.PCEvents != res.PCEvents || m.Adoptions != res.Adoptions || m.Mutations != res.Mutations {
		t.Errorf("Metrics events %d/%d/%d disagree with result %d/%d/%d",
			m.PCEvents, m.Adoptions, m.Mutations, res.PCEvents, res.Adoptions, res.Mutations)
	}
	if m.BatchGames <= 0 || m.BatchCalls <= 0 {
		t.Errorf("forced batch kernel recorded no batch work: %+v", m)
	}
	if occ := m.BatchLaneOccupancy(); occ <= 0 || occ > 1 {
		t.Errorf("BatchLaneOccupancy = %v, want in (0, 1]", occ)
	}
}
