package evogame

import (
	"math"
	"testing"
)

func TestExactPayoffsFacade(t *testing.T) {
	// AllD vs AllC over 200 noiseless rounds: 800 vs 0.
	pa, pb, err := ExactPayoffs("1111", "0000", 1, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 800 || pb != 0 {
		t.Fatalf("AllD vs AllC = (%v,%v)", pa, pb)
	}
	if _, _, err := ExactPayoffs("11", "0000", 1, 200, 0); err == nil {
		t.Fatal("accepted a malformed strategy")
	}
	if _, _, err := ExactPayoffs("1111", "00x0", 1, 200, 0); err == nil {
		t.Fatal("accepted a malformed opponent")
	}
}

func TestExactPayoffsMatchSimulation(t *testing.T) {
	// WSLS self-play under noise: the exact value must sit near the
	// noiseless 600 but strictly below it.
	wsls, _ := NamedStrategy("wsls", 1)
	pa, pb, err := ExactPayoffs(wsls, wsls, 1, 200, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("symmetric pair with symmetric noise should have equal payoffs: %v vs %v", pa, pb)
	}
	if pa >= 600 || pa < 500 {
		t.Fatalf("noisy WSLS self-play payoff = %v, want slightly below 600", pa)
	}
}

func TestCanInvadeFacade(t *testing.T) {
	alld, _ := NamedStrategy("alld", 1)
	allc, _ := NamedStrategy("allc", 1)
	wsls, _ := NamedStrategy("wsls", 1)
	invades, err := CanInvade(allc, alld, 1, 200, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !invades {
		t.Fatal("ALLD should invade ALLC")
	}
	invades, err = CanInvade(wsls, alld, 1, 200, 50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if invades {
		t.Fatal("ALLD should not invade WSLS")
	}
	if _, err := CanInvade("bad", alld, 1, 200, 50, 0); err == nil {
		t.Fatal("accepted a malformed resident")
	}
	if _, err := CanInvade(wsls, "bad", 1, 200, 50, 0); err == nil {
		t.Fatal("accepted a malformed mutant")
	}
}

func TestClassifyStrategyFacade(t *testing.T) {
	tft, _ := NamedStrategy("tft", 1)
	traits, err := ClassifyStrategy(tft, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !traits.Nice || !traits.Retaliatory || traits.Forgiving || traits.DefectionRate != 0.5 {
		t.Fatalf("TFT traits = %+v", traits)
	}
	if _, err := ClassifyStrategy("0", 1); err == nil {
		t.Fatal("accepted a malformed strategy")
	}
}

func TestCooperationIndexFacade(t *testing.T) {
	allc, _ := NamedStrategy("allc", 1)
	alld, _ := NamedStrategy("alld", 1)
	idx, err := CooperationIndex(allc, alld, 1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("AllC cooperation index = %v", idx)
	}
	idx, err = CooperationIndex(alld, allc, 1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("AllD cooperation index = %v", idx)
	}
	if _, err := CooperationIndex("x", allc, 1, 100, 0); err == nil {
		t.Fatal("accepted a malformed strategy")
	}
	if _, err := CooperationIndex(allc, "x", 1, 100, 0); err == nil {
		t.Fatal("accepted a malformed opponent")
	}
}

func TestRunTournamentFacade(t *testing.T) {
	entrants, err := ClassicTournamentEntrants(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entrants) != 6 {
		t.Fatalf("classic field has %d entrants", len(entrants))
	}
	standings, err := RunTournament(entrants, TournamentConfig{Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(standings) != 6 {
		t.Fatalf("standings has %d rows", len(standings))
	}
	if standings[0].Name == "ALLC" {
		t.Fatal("ALLC should not win the classic noiseless field")
	}
	total := 0.0
	for _, s := range standings {
		total += s.TotalScore
		if s.Games != 5 {
			t.Fatalf("%s played %d games", s.Name, s.Games)
		}
	}
	if total <= 0 {
		t.Fatal("tournament produced no payoff")
	}
	// Standings must be sorted.
	for i := 1; i < len(standings); i++ {
		if standings[i].TotalScore > standings[i-1].TotalScore {
			t.Fatal("standings not sorted by score")
		}
	}
}

func TestRunTournamentNoisyWSLSBeatsTFT(t *testing.T) {
	wsls, _ := NamedStrategy("wsls", 1)
	tft, _ := NamedStrategy("tft", 1)
	allc, _ := NamedStrategy("allc", 1)
	standings, err := RunTournament(map[string]string{
		"WSLS": wsls, "TFT": tft, "ALLC": allc,
	}, TournamentConfig{Rounds: 200, Repetitions: 20, Noise: 0.03, IncludeSelfPlay: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, s := range standings {
		scores[s.Name] = s.TotalScore
	}
	if scores["WSLS"] <= scores["TFT"] {
		t.Fatalf("WSLS (%v) should out-score TFT (%v) under noise", scores["WSLS"], scores["TFT"])
	}
}

func TestRunTournamentValidation(t *testing.T) {
	if _, err := RunTournament(map[string]string{"only": "0101"}, TournamentConfig{}); err == nil {
		t.Fatal("accepted a single entrant")
	}
	if _, err := RunTournament(map[string]string{"a": "0101", "b": "zz"}, TournamentConfig{}); err == nil {
		t.Fatal("accepted a malformed entrant")
	}
	if _, err := ClassicTournamentEntrants(0); err == nil {
		t.Fatal("accepted memory 0")
	}
}

func TestRunTournamentDeterministic(t *testing.T) {
	entrants, _ := ClassicTournamentEntrants(1)
	run := func() []TournamentStanding {
		s, err := RunTournament(entrants, TournamentConfig{Rounds: 100, Repetitions: 3, Noise: 0.05, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tournament results differ at rank %d despite identical seeds", i)
		}
	}
}

func TestExactPayoffsConsistentWithSimulateDynamics(t *testing.T) {
	// Cross-check facade layers: the exact pairwise payoff ordering between
	// WSLS and ALLD must agree with what the population engine does when the
	// two strategies compete (the WSLS majority persists).
	wsls, _ := NamedStrategy("wsls", 1)
	alld, _ := NamedStrategy("alld", 1)
	wW, _, err := ExactPayoffs(wsls, wsls, 1, 200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dW, _, err := ExactPayoffs(alld, wsls, 1, 200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dd, _, err := ExactPayoffs(alld, alld, 1, 200, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// In a WSLS-majority population the WSLS cluster earns close to mutual
	// cooperation against itself, which exceeds what ALLD extracts from the
	// mix; this is the analytic counterpart of TestWSLSMajorityResistsAllD.
	if !(wW > dd && wW > 0.75*(dW+dd)) {
		t.Fatalf("exact payoffs do not support WSLS stability: wW=%v dW=%v dd=%v", wW, dW, dd)
	}
	if math.IsNaN(wW) || math.IsNaN(dW) || math.IsNaN(dd) {
		t.Fatal("NaN payoff")
	}
}
