package evogame

// Equivalence tests for the pluggable game, update-rule and topology
// layers: every registered (game, update rule) combination and every
// built-in topology must produce identical trajectories across both
// engines and all fitness evaluation modes, the default scenario must
// remain bit-identical to a zero-value configuration, and non-integer
// payoff matrices must transparently fall back from the incremental mode
// without changing the dynamics.

import (
	"context"
	"fmt"
	"testing"
)

func TestScenarioRegistries(t *testing.T) {
	games := Games()
	for _, want := range []string{"ipd", "snowdrift", "staghunt", "generic"} {
		found := false
		for _, g := range games {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Games() = %v, missing %q", games, want)
		}
	}
	rules := UpdateRules()
	for _, want := range []string{"fermi", "imitation", "moran"} {
		found := false
		for _, r := range rules {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("UpdateRules() = %v, missing %q", rules, want)
		}
	}
	info, err := DescribeGame("ipd")
	if err != nil || info.Payoff != [4]float64{3, 0, 4, 1} {
		t.Errorf("DescribeGame(ipd) = %+v, %v; want the paper's [3 0 4 1]", info, err)
	}
	if _, err := DescribeGame("calvinball"); err == nil {
		t.Error("DescribeGame accepted an unknown game")
	}
}

func TestScenarioRejectsBadConfig(t *testing.T) {
	base := SimulationConfig{NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1}
	for name, mutate := range map[string]func(*SimulationConfig){
		"unknown game":      func(c *SimulationConfig) { c.Game = "calvinball" },
		"unknown rule":      func(c *SimulationConfig) { c.UpdateRule = "replicator" },
		"short payoff":      func(c *SimulationConfig) { c.Payoff = []float64{1, 2} },
		"constraint broken": func(c *SimulationConfig) { c.Game = "staghunt"; c.Payoff = []float64{3, 0, 4, 1} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Simulate(context.Background(), cfg); err == nil {
			t.Errorf("Simulate accepted %s", name)
		}
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, Game: "calvinball",
	}); err == nil {
		t.Error("SimulateParallel accepted an unknown game")
	}
}

// TestDefaultScenarioBitIdentical is the zero-regression check of the
// refactor: leaving Game/UpdateRule unset must reproduce exactly what an
// explicit IPD + Fermi configuration produces, in both engines and under
// every eval mode, because the zero values resolve to the same spec and
// rule the pre-registry engines hardwired.
func TestDefaultScenarioBitIdentical(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 42,
		SampleEvery: 20,
	}
	for _, mode := range allEvalModes {
		implicit := base
		implicit.EvalMode = mode
		explicit := implicit
		explicit.Game = "ipd"
		explicit.UpdateRule = "fermi"
		ri, err := Simulate(context.Background(), implicit)
		if err != nil {
			t.Fatalf("implicit %v: %v", mode, err)
		}
		re, err := Simulate(context.Background(), explicit)
		if err != nil {
			t.Fatalf("explicit %v: %v", mode, err)
		}
		if fmt.Sprint(ri) != fmt.Sprint(re) {
			t.Fatalf("%v: explicit ipd+fermi differs from the zero-value scenario", mode)
		}
	}
	pbase := ParallelConfig{
		Ranks: 3, OptimizationLevel: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1,
		Rounds: 30, PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 40, Seed: 42,
	}
	explicit := pbase
	explicit.Game = "ipd"
	explicit.UpdateRule = "fermi"
	ri, err := SimulateParallel(pbase)
	if err != nil {
		t.Fatal(err)
	}
	re, err := SimulateParallel(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ri.FinalStrategies) != fmt.Sprint(re.FinalStrategies) {
		t.Fatal("parallel: explicit ipd+fermi differs from the zero-value scenario")
	}
}

// TestScenarioMatrixEquivalence is the cross-engine acceptance check for
// the scenario layer: for every registered (game, update rule) pair, all
// three eval modes must reproduce the serial EvalFull trajectory bit for
// bit, and the distributed engine must agree with the serial one.
func TestScenarioMatrixEquivalence(t *testing.T) {
	for _, gameName := range Games() {
		for _, ruleName := range UpdateRules() {
			gameName, ruleName := gameName, ruleName
			t.Run(gameName+"/"+ruleName, func(t *testing.T) {
				base := SimulationConfig{
					NumSSets: 10, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
					PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 50, Seed: 31,
					Game: gameName, UpdateRule: ruleName,
				}
				serial := make(map[EvalMode]SimulationResult)
				for _, mode := range allEvalModes {
					cfg := base
					cfg.EvalMode = mode
					res, err := Simulate(context.Background(), cfg)
					if err != nil {
						t.Fatalf("serial %v: %v", mode, err)
					}
					serial[mode] = res
				}
				want := serial[EvalFull]
				for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
					got := serial[mode]
					if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("serial %v: final strategies differ from EvalFull", mode)
					}
					if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
						t.Fatalf("serial %v: event counts differ from EvalFull", mode)
					}
				}

				for _, mode := range allEvalModes {
					res, err := SimulateParallel(ParallelConfig{
						Ranks: 4, OptimizationLevel: 3,
						NumSSets: base.NumSSets, AgentsPerSSet: base.AgentsPerSSet,
						MemorySteps: base.MemorySteps, Rounds: base.Rounds,
						PCRate: base.PCRate, MutationRate: base.MutationRate, Beta: base.Beta,
						Generations: base.Generations, Seed: base.Seed,
						Game: gameName, UpdateRule: ruleName, EvalMode: mode,
					})
					if err != nil {
						t.Fatalf("parallel %v: %v", mode, err)
					}
					if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("parallel %v: serial and distributed engines diverge", mode)
					}
					if res.PCEvents != want.PCEvents || res.Adoptions != want.Adoptions || res.Mutations != want.Mutations {
						t.Fatalf("parallel %v: event counts diverge from serial", mode)
					}
				}
			})
		}
	}
}

// TestTopologyMatrixEquivalence is the cross-engine acceptance check for
// the structured-population layer: for every built-in topology at
// S ∈ {32, 128}, all three eval modes must reproduce the serial EvalFull
// trajectory bit for bit, and the distributed engine must agree with the
// serial one.  (Both engines rebuild the graph deterministically from the
// seed, so any divergence in construction or neighbor iteration order
// would surface here.)
func TestTopologyMatrixEquivalence(t *testing.T) {
	topologies := []string{"wellmixed", "ring:4", "torus:vonneumann", "torus:moore", "smallworld:4:0.2"}
	for _, ssets := range []int{32, 128} {
		gens := 50
		if ssets == 128 {
			if testing.Short() {
				continue
			}
			gens = 30
		}
		for _, topo := range topologies {
			ssets, gens, topo := ssets, gens, topo
			t.Run(fmt.Sprintf("S%d/%s", ssets, topo), func(t *testing.T) {
				base := SimulationConfig{
					NumSSets: ssets, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
					PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: gens, Seed: 59,
					Topology: topo,
				}
				serial := make(map[EvalMode]SimulationResult)
				for _, mode := range allEvalModes {
					cfg := base
					cfg.EvalMode = mode
					res, err := Simulate(context.Background(), cfg)
					if err != nil {
						t.Fatalf("serial %v: %v", mode, err)
					}
					serial[mode] = res
				}
				want := serial[EvalFull]
				for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
					got := serial[mode]
					if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("serial %v: final strategies differ from EvalFull", mode)
					}
					if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
						t.Fatalf("serial %v: event counts differ from EvalFull", mode)
					}
				}

				for _, mode := range allEvalModes {
					res, err := SimulateParallel(ParallelConfig{
						Ranks: 5, OptimizationLevel: 3,
						NumSSets: base.NumSSets, AgentsPerSSet: base.AgentsPerSSet,
						MemorySteps: base.MemorySteps, Rounds: base.Rounds,
						PCRate: base.PCRate, MutationRate: base.MutationRate, Beta: base.Beta,
						Generations: base.Generations, Seed: base.Seed,
						Topology: topo, EvalMode: mode,
					})
					if err != nil {
						t.Fatalf("parallel %v: %v", mode, err)
					}
					if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("parallel %v: serial and distributed engines diverge", mode)
					}
					if res.PCEvents != want.PCEvents || res.Adoptions != want.Adoptions || res.Mutations != want.Mutations {
						t.Fatalf("parallel %v: event counts diverge from serial", mode)
					}
				}
			})
		}
	}
}

// TestTopologyRegistryFacade covers the topology registry surface of the
// facade: the registry lists the built-ins, DescribeTopology resolves
// parameterized selections, TopologyNeighbors matches the graph a
// simulation runs on, and invalid selections are rejected by both engines.
func TestTopologyRegistryFacade(t *testing.T) {
	topos := Topologies()
	for _, want := range []string{"wellmixed", "ring", "torus", "smallworld"} {
		found := false
		for _, name := range topos {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Topologies() = %v, missing %q", topos, want)
		}
	}
	info, err := DescribeTopology("ring:8")
	if err != nil || info.Name != "ring" || info.Canonical != "ring:8" {
		t.Errorf("DescribeTopology(ring:8) = %+v, %v", info, err)
	}
	if _, err := DescribeTopology("hypercube"); err == nil {
		t.Error("DescribeTopology accepted an unknown topology")
	}
	neigh, err := TopologyNeighbors("ring:4", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(neigh[0]) != "[1 2 8 9]" {
		t.Errorf("TopologyNeighbors(ring:4)[0] = %v, want [1 2 8 9]", neigh[0])
	}
	for name, cfgTopo := range map[string]string{
		"unknown":    "hypercube",
		"bad degree": "ring:5",
		"bad params": "wellmixed:3",
	} {
		if _, err := Simulate(context.Background(), SimulationConfig{
			NumSSets: 8, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, Topology: cfgTopo,
		}); err == nil {
			t.Errorf("Simulate accepted %s topology %q", name, cfgTopo)
		}
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 8, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, Topology: "hypercube",
	}); err == nil {
		t.Error("SimulateParallel accepted an unknown topology")
	}
}

// TestTopologyChangesDynamics is the sanity counterpart: a structured
// topology must actually change the trajectory relative to well-mixed
// (same seed, same everything else), and explicit "wellmixed" must match
// the zero-value default bit for bit.
func TestTopologyChangesDynamics(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 80, Seed: 5,
	}
	def, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Topology = "wellmixed"
	wm, err := Simulate(context.Background(), explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(def) != fmt.Sprint(wm) {
		t.Error("explicit wellmixed differs from the zero-value topology")
	}
	ring := base
	ring.Topology = "ring:4"
	rr, err := Simulate(context.Background(), ring)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rr.FinalStrategies) == fmt.Sprint(def.FinalStrategies) {
		t.Error("ring:4 produced the same trajectory as well-mixed")
	}
}

// TestScenariosChangeDynamics is the sanity counterpart of the equivalence
// matrix: switching the game or the update rule must actually change the
// trajectory (same seed, same everything else).
func TestScenariosChangeDynamics(t *testing.T) {
	run := func(gameName, ruleName string) SimulationResult {
		t.Helper()
		res, err := Simulate(context.Background(), SimulationConfig{
			NumSSets: 14, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
			PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 80, Seed: 5,
			Game: gameName, UpdateRule: ruleName,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", gameName, ruleName, err)
		}
		return res
	}
	ipdFermi := run("ipd", "fermi")
	if fmt.Sprint(run("snowdrift", "fermi").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("snowdrift produced the same trajectory as ipd")
	}
	if fmt.Sprint(run("ipd", "imitation").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("imitation produced the same trajectory as fermi")
	}
	if fmt.Sprint(run("ipd", "moran").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("moran produced the same trajectory as fermi")
	}
}

// TestNonIntegerPayoffFallsBackFromIncremental exercises the DeltaExact
// gate: a generic game with fractional payoffs cannot guarantee bit-exact
// incremental delta updates, so EvalIncremental must transparently behave
// like EvalCached and still reproduce the EvalFull trajectory exactly.
func TestNonIntegerPayoffFallsBackFromIncremental(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 10, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 13,
		Game: "generic", Payoff: []float64{2.25, 0.5, 3.75, 1.125},
	}
	results := make(map[EvalMode]SimulationResult)
	for _, mode := range allEvalModes {
		cfg := base
		cfg.EvalMode = mode
		res, err := Simulate(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[mode] = res
	}
	want := results[EvalFull]
	for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
		got := results[mode]
		if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) ||
			fmt.Sprint(got.Samples) != fmt.Sprint(want.Samples) ||
			got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
			t.Fatalf("%v: non-integer payoff trajectory differs from EvalFull", mode)
		}
	}
	for _, mode := range allEvalModes {
		res, err := SimulateParallel(ParallelConfig{
			Ranks: 3, OptimizationLevel: 3,
			NumSSets: base.NumSSets, AgentsPerSSet: base.AgentsPerSSet,
			MemorySteps: base.MemorySteps, Rounds: base.Rounds,
			PCRate: base.PCRate, MutationRate: base.MutationRate, Beta: base.Beta,
			Generations: base.Generations, Seed: base.Seed,
			Game: base.Game, Payoff: base.Payoff, EvalMode: mode,
		})
		if err != nil {
			t.Fatalf("parallel %v: %v", mode, err)
		}
		if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("parallel %v: non-integer payoff diverges from the serial trajectory", mode)
		}
	}
}
