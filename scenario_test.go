package evogame

// Equivalence tests for the pluggable game & update-rule layer: every
// registered (game, update rule) combination must produce identical
// trajectories across both engines and all fitness evaluation modes, the
// default scenario must remain bit-identical to a zero-value configuration,
// and non-integer payoff matrices must transparently fall back from the
// incremental mode without changing the dynamics.

import (
	"context"
	"fmt"
	"testing"
)

func TestScenarioRegistries(t *testing.T) {
	games := Games()
	for _, want := range []string{"ipd", "snowdrift", "staghunt", "generic"} {
		found := false
		for _, g := range games {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Games() = %v, missing %q", games, want)
		}
	}
	rules := UpdateRules()
	for _, want := range []string{"fermi", "imitation", "moran"} {
		found := false
		for _, r := range rules {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("UpdateRules() = %v, missing %q", rules, want)
		}
	}
	info, err := DescribeGame("ipd")
	if err != nil || info.Payoff != [4]float64{3, 0, 4, 1} {
		t.Errorf("DescribeGame(ipd) = %+v, %v; want the paper's [3 0 4 1]", info, err)
	}
	if _, err := DescribeGame("calvinball"); err == nil {
		t.Error("DescribeGame accepted an unknown game")
	}
}

func TestScenarioRejectsBadConfig(t *testing.T) {
	base := SimulationConfig{NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1}
	for name, mutate := range map[string]func(*SimulationConfig){
		"unknown game":      func(c *SimulationConfig) { c.Game = "calvinball" },
		"unknown rule":      func(c *SimulationConfig) { c.UpdateRule = "replicator" },
		"short payoff":      func(c *SimulationConfig) { c.Payoff = []float64{1, 2} },
		"constraint broken": func(c *SimulationConfig) { c.Game = "staghunt"; c.Payoff = []float64{3, 0, 4, 1} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Simulate(context.Background(), cfg); err == nil {
			t.Errorf("Simulate accepted %s", name)
		}
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, Game: "calvinball",
	}); err == nil {
		t.Error("SimulateParallel accepted an unknown game")
	}
}

// TestDefaultScenarioBitIdentical is the zero-regression check of the
// refactor: leaving Game/UpdateRule unset must reproduce exactly what an
// explicit IPD + Fermi configuration produces, in both engines and under
// every eval mode, because the zero values resolve to the same spec and
// rule the pre-registry engines hardwired.
func TestDefaultScenarioBitIdentical(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 42,
		SampleEvery: 20,
	}
	for _, mode := range allEvalModes {
		implicit := base
		implicit.EvalMode = mode
		explicit := implicit
		explicit.Game = "ipd"
		explicit.UpdateRule = "fermi"
		ri, err := Simulate(context.Background(), implicit)
		if err != nil {
			t.Fatalf("implicit %v: %v", mode, err)
		}
		re, err := Simulate(context.Background(), explicit)
		if err != nil {
			t.Fatalf("explicit %v: %v", mode, err)
		}
		if fmt.Sprint(ri) != fmt.Sprint(re) {
			t.Fatalf("%v: explicit ipd+fermi differs from the zero-value scenario", mode)
		}
	}
	pbase := ParallelConfig{
		Ranks: 3, OptimizationLevel: 3, NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1,
		Rounds: 30, PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 40, Seed: 42,
	}
	explicit := pbase
	explicit.Game = "ipd"
	explicit.UpdateRule = "fermi"
	ri, err := SimulateParallel(pbase)
	if err != nil {
		t.Fatal(err)
	}
	re, err := SimulateParallel(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ri.FinalStrategies) != fmt.Sprint(re.FinalStrategies) {
		t.Fatal("parallel: explicit ipd+fermi differs from the zero-value scenario")
	}
}

// TestScenarioMatrixEquivalence is the cross-engine acceptance check for
// the scenario layer: for every registered (game, update rule) pair, all
// three eval modes must reproduce the serial EvalFull trajectory bit for
// bit, and the distributed engine must agree with the serial one.
func TestScenarioMatrixEquivalence(t *testing.T) {
	for _, gameName := range Games() {
		for _, ruleName := range UpdateRules() {
			gameName, ruleName := gameName, ruleName
			t.Run(gameName+"/"+ruleName, func(t *testing.T) {
				base := SimulationConfig{
					NumSSets: 10, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
					PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 50, Seed: 31,
					Game: gameName, UpdateRule: ruleName,
				}
				serial := make(map[EvalMode]SimulationResult)
				for _, mode := range allEvalModes {
					cfg := base
					cfg.EvalMode = mode
					res, err := Simulate(context.Background(), cfg)
					if err != nil {
						t.Fatalf("serial %v: %v", mode, err)
					}
					serial[mode] = res
				}
				want := serial[EvalFull]
				for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
					got := serial[mode]
					if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("serial %v: final strategies differ from EvalFull", mode)
					}
					if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
						t.Fatalf("serial %v: event counts differ from EvalFull", mode)
					}
				}

				for _, mode := range allEvalModes {
					res, err := SimulateParallel(ParallelConfig{
						Ranks: 4, OptimizationLevel: 3,
						NumSSets: base.NumSSets, AgentsPerSSet: base.AgentsPerSSet,
						MemorySteps: base.MemorySteps, Rounds: base.Rounds,
						PCRate: base.PCRate, MutationRate: base.MutationRate, Beta: base.Beta,
						Generations: base.Generations, Seed: base.Seed,
						Game: gameName, UpdateRule: ruleName, EvalMode: mode,
					})
					if err != nil {
						t.Fatalf("parallel %v: %v", mode, err)
					}
					if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("parallel %v: serial and distributed engines diverge", mode)
					}
					if res.PCEvents != want.PCEvents || res.Adoptions != want.Adoptions || res.Mutations != want.Mutations {
						t.Fatalf("parallel %v: event counts diverge from serial", mode)
					}
				}
			})
		}
	}
}

// TestScenariosChangeDynamics is the sanity counterpart of the equivalence
// matrix: switching the game or the update rule must actually change the
// trajectory (same seed, same everything else).
func TestScenariosChangeDynamics(t *testing.T) {
	run := func(gameName, ruleName string) SimulationResult {
		t.Helper()
		res, err := Simulate(context.Background(), SimulationConfig{
			NumSSets: 14, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
			PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 80, Seed: 5,
			Game: gameName, UpdateRule: ruleName,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", gameName, ruleName, err)
		}
		return res
	}
	ipdFermi := run("ipd", "fermi")
	if fmt.Sprint(run("snowdrift", "fermi").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("snowdrift produced the same trajectory as ipd")
	}
	if fmt.Sprint(run("ipd", "imitation").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("imitation produced the same trajectory as fermi")
	}
	if fmt.Sprint(run("ipd", "moran").FinalStrategies) == fmt.Sprint(ipdFermi.FinalStrategies) {
		t.Error("moran produced the same trajectory as fermi")
	}
}

// TestNonIntegerPayoffFallsBackFromIncremental exercises the DeltaExact
// gate: a generic game with fractional payoffs cannot guarantee bit-exact
// incremental delta updates, so EvalIncremental must transparently behave
// like EvalCached and still reproduce the EvalFull trajectory exactly.
func TestNonIntegerPayoffFallsBackFromIncremental(t *testing.T) {
	base := SimulationConfig{
		NumSSets: 10, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 60, Seed: 13,
		Game: "generic", Payoff: []float64{2.25, 0.5, 3.75, 1.125},
	}
	results := make(map[EvalMode]SimulationResult)
	for _, mode := range allEvalModes {
		cfg := base
		cfg.EvalMode = mode
		res, err := Simulate(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[mode] = res
	}
	want := results[EvalFull]
	for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
		got := results[mode]
		if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) ||
			fmt.Sprint(got.Samples) != fmt.Sprint(want.Samples) ||
			got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
			t.Fatalf("%v: non-integer payoff trajectory differs from EvalFull", mode)
		}
	}
	for _, mode := range allEvalModes {
		res, err := SimulateParallel(ParallelConfig{
			Ranks: 3, OptimizationLevel: 3,
			NumSSets: base.NumSSets, AgentsPerSSet: base.AgentsPerSSet,
			MemorySteps: base.MemorySteps, Rounds: base.Rounds,
			PCRate: base.PCRate, MutationRate: base.MutationRate, Beta: base.Beta,
			Generations: base.Generations, Seed: base.Seed,
			Game: base.Game, Payoff: base.Payoff, EvalMode: mode,
		})
		if err != nil {
			t.Fatalf("parallel %v: %v", mode, err)
		}
		if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("parallel %v: non-integer payoff diverges from the serial trajectory", mode)
		}
	}
}
