// Package evogame is the public interface of the evolutionary game dynamics
// framework reproduced from "Massively Parallel Model of Extended Memory Use
// in Evolutionary Game Dynamics" (Randles et al., IPDPS 2013).
//
// The framework simulates a population of Strategy Sets (groups of agents
// sharing one repeated-game strategy with one to six rounds of memory)
// evolving under a pluggable update rule and random mutation.  The paper's
// scenario — the Iterated Prisoner's Dilemma with pairwise-comparison Fermi
// learning in a well-mixed population — is the default entry of three
// registries: Games() lists the playable scenarios (IPD, Snowdrift, Stag
// Hunt, generic 2x2), UpdateRules() the adoption rules (Fermi, imitation,
// Moran death-birth) and Topologies() the interaction graphs (well-mixed,
// ring, torus, small-world), selected through SimulationConfig.Game /
// .UpdateRule / .Topology.  Two engines are provided behind this facade:
//
//   - Simulate runs the serial reference engine, suitable for scientific
//     studies such as the Win-Stay Lose-Shift emergence validation.
//   - SimulateParallel runs the distributed engine: rank 0 is the Nature
//     Agent and the remaining ranks own blocks of Strategy Sets, with game
//     play fanned across worker goroutines inside each rank, mirroring the
//     paper's MPI/OpenMP decomposition on an in-process message-passing
//     runtime.
//
// Strategies cross the API boundary as move-table strings ("0110" is
// memory-one Win-Stay Lose-Shift; one character per game state, '0' =
// cooperate, '1' = defect), so callers never depend on internal types.
// Scaling predictions for Blue Gene/P and Blue Gene/Q class machines are
// available through PredictStrongScaling, PredictWeakScaling, RatioTable and
// MemorySweep.
package evogame

import (
	"context"
	"fmt"
	"time"

	"evogame/internal/artifact"
	"evogame/internal/checkpoint"
	"evogame/internal/dynamics"
	"evogame/internal/faults"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/kmeans"
	"evogame/internal/parallel"
	"evogame/internal/population"
	"evogame/internal/strategy"
	"evogame/internal/supervise"
	"evogame/internal/topology"
)

// Version is the library version.
const Version = "1.0.0"

// DefaultRounds is the number of IPD rounds per game used in the paper.
const DefaultRounds = game.DefaultRounds

// MaxMemorySteps is the largest supported strategy memory depth.
const MaxMemorySteps = game.MaxMemorySteps

// EvalMode selects how the engines evaluate Strategy-Set fitness; it is the
// knob over the shared incremental-fitness subsystem.
//
// Noiseless games between deterministic strategies are pure functions of
// the strategy pair, so their results can be reused instead of replayed.
// All three modes produce bit-identical results for identical seeds: when
// the reuse conditions fail (Noise > 0 or mixed strategies), the cached
// modes transparently fall back to the full evaluation path.
type EvalMode int

const (
	// EvalFull replays every game of every evaluation, exactly as the
	// paper's implementation does.  This is the default and the workload
	// the scaling studies measure.
	EvalFull EvalMode = iota
	// EvalCached memoizes each distinct strategy pair's game result across
	// generations, so every distinct pair is played at most once per run
	// (per rank, in the distributed engine).
	EvalCached
	// EvalIncremental additionally maintains per-SSet fitness sums across
	// generations, invalidating only the row/column of the SSet whose
	// strategy changed; generations without strategy changes replay
	// nothing.
	EvalIncremental
)

// String implements fmt.Stringer.
func (m EvalMode) String() string { return fitness.EvalMode(m).String() }

// ParseEvalMode maps "full", "cached" or "incremental" to an EvalMode.
func ParseEvalMode(s string) (EvalMode, error) {
	m, err := fitness.ParseEvalMode(s)
	return EvalMode(m), err
}

func (m EvalMode) toInternal() (fitness.EvalMode, error) {
	im := fitness.EvalMode(m)
	if !im.Valid() {
		return fitness.EvalFull, fmt.Errorf("evogame: invalid eval mode %d", int(m))
	}
	return im, nil
}

// KernelModes returns the names accepted by SimulationConfig.Kernel and
// ParallelConfig.Kernel ("auto", "full-replay", "batch").
func KernelModes() []string { return []string{"auto", "full-replay", "batch"} }

// Games returns the names of the registered game scenarios ("ipd",
// "snowdrift", "staghunt", "generic", plus any registered extensions).
// Every scenario works in both engines and under every EvalMode.
func Games() []string { return game.SpecNames() }

// UpdateRules returns the names of the registered update rules ("fermi",
// "imitation", "moran", plus any registered extensions).
func UpdateRules() []string { return dynamics.Names() }

// Topologies returns the names of the registered interaction topologies
// ("wellmixed", "ring", "torus", "smallworld", plus any registered
// extensions).  Every topology works in both engines and under every
// EvalMode.
func Topologies() []string { return topology.Names() }

// TopologyInfo describes one registered interaction-topology family.
type TopologyInfo struct {
	// Name is the registry key accepted (with optional parameters) by
	// SimulationConfig.Topology.
	Name string
	// Title is a short human description.
	Title string
	// Syntax is the parameterized selection syntax Parse accepts, for
	// example "ring[:degree]".
	Syntax string
	// Canonical is the fully resolved spec string with the family's default
	// parameters filled in, for example "ring:4"; it is the identity
	// recorded in checkpoints.
	Canonical string
}

// DescribeTopology resolves a topology selection — a registry name with
// optional parameters, such as "ring", "ring:8" or "smallworld:6:0.2" —
// and returns its description.
func DescribeTopology(sel string) (TopologyInfo, error) {
	spec, err := topology.Parse(sel)
	if err != nil {
		return TopologyInfo{}, fmt.Errorf("evogame: %w", err)
	}
	return TopologyInfo{
		Name:      spec.Name,
		Title:     spec.Title,
		Syntax:    topology.Syntax(spec.Name),
		Canonical: spec.String(),
	}, nil
}

// TopologyNeighbors builds the named topology over n SSets with the given
// seed — exactly the graph a simulation with the same Topology, NumSSets
// and Seed runs on — and returns each SSet's neighbor list in ascending
// order.  Analysis tooling uses it to relate final strategy tables to the
// interaction structure (see examples/lattice_cooperation).
func TopologyNeighbors(sel string, n int, seed uint64) ([][]int, error) {
	spec, err := topology.Parse(sel)
	if err != nil {
		return nil, fmt.Errorf("evogame: %w", err)
	}
	g, err := spec.Build(n, seed)
	if err != nil {
		return nil, fmt.Errorf("evogame: %w", err)
	}
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		out[i] = topology.Neighbors(g, i)
	}
	return out, nil
}

// GameInfo describes one registered scenario.
type GameInfo struct {
	// Name is the registry key accepted by SimulationConfig.Game.
	Name string
	// Title is a short human description.
	Title string
	// Payoff holds the canonical payoff values as [R, S, T, P].
	Payoff [4]float64
}

// DescribeGame returns the registered scenario with the given name.
func DescribeGame(name string) (GameInfo, error) {
	spec, err := game.LookupSpec(name)
	if err != nil {
		return GameInfo{}, err
	}
	return GameInfo{
		Name:   spec.Name,
		Title:  spec.Title,
		Payoff: spec.Payoff.Table(),
	}, nil
}

// resolveScenario maps the facade's scenario knobs — a game name, an
// optional [R, S, T, P] payoff override and an update-rule name — onto the
// internal spec and rule values shared by both engines.  Empty strings
// select the paper's defaults (IPD, Fermi).
func resolveScenario(gameName string, payoff []float64, ruleName string) (game.Spec, dynamics.Rule, error) {
	if gameName == "" {
		gameName = "ipd"
	}
	spec, err := game.LookupSpec(gameName)
	if err != nil {
		return game.Spec{}, nil, fmt.Errorf("evogame: %w", err)
	}
	if len(payoff) > 0 {
		if len(payoff) != 4 {
			return game.Spec{}, nil, fmt.Errorf("evogame: payoff override needs 4 values [R,S,T,P], got %d", len(payoff))
		}
		spec, err = spec.WithPayoff(game.Matrix{
			Reward: payoff[0], Sucker: payoff[1], Temptation: payoff[2], Punishment: payoff[3],
		})
		if err != nil {
			return game.Spec{}, nil, fmt.Errorf("evogame: %w", err)
		}
	}
	if ruleName == "" {
		ruleName = "fermi"
	}
	rule, err := dynamics.Lookup(ruleName)
	if err != nil {
		return game.Spec{}, nil, fmt.Errorf("evogame: %w", err)
	}
	return spec, rule, nil
}

// SimulationConfig configures the serial reference engine.
type SimulationConfig struct {
	// NumSSets is the number of Strategy Sets (>= 2).
	NumSSets int
	// AgentsPerSSet is the number of agents per Strategy Set (>= 1).
	AgentsPerSSet int
	// MemorySteps is the strategy memory depth, 1..6.
	MemorySteps int
	// Rounds is the number of IPD rounds per game; 0 selects the paper's 200.
	Rounds int
	// Noise is the per-move execution-error probability.
	Noise float64
	// PCRate is the per-generation pairwise-comparison probability; 0 selects
	// the paper's 0.1, a negative value disables learning.
	PCRate float64
	// MutationRate is the per-generation mutation probability; 0 selects the
	// paper's 0.05, a negative value disables mutation.
	MutationRate float64
	// Beta is the Fermi selection intensity; 0 selects 1.0.
	Beta float64
	// Generations is the number of generations to simulate.
	Generations int
	// Seed makes runs reproducible.
	Seed uint64
	// InitialStrategies optionally fixes each SSet's starting strategy as a
	// move-table string; when empty, strategies are drawn uniformly at
	// random.
	InitialStrategies []string
	// SampleEvery records an abundance sample every this many generations
	// (0 disables periodic sampling; the final state is always sampled).
	SampleEvery int
	// EvalMode selects full, cached or incremental fitness evaluation; all
	// modes produce identical results for identical seeds.
	EvalMode EvalMode
	// Kernel selects the deterministic-game inner loop: "" or "auto"
	// (default) closes the periodic joint-state trajectory of a noiseless
	// deterministic game in closed form whenever that is bit-exact,
	// "full-replay" forces the round-by-round reference loop, and "batch"
	// forces the bit-sliced 64-lane SWAR kernel at every memory depth when
	// games are evaluated in batches.  All kernel modes produce identical
	// results for identical seeds; see docs/PERFORMANCE.md.
	Kernel string
	// Workers bounds the worker goroutines used for game play inside a
	// fitness evaluation.  Zero selects GOMAXPROCS; negative values are
	// rejected.  The result is independent of the worker count.
	Workers int
	// Game names the scenario to play; empty selects "ipd", the paper's
	// Iterated Prisoner's Dilemma.  See Games() for the registry.
	Game string
	// Payoff optionally overrides the scenario's canonical payoff values as
	// [R, S, T, P]; the override must satisfy the scenario's constraints.
	Payoff []float64
	// UpdateRule names the adoption rule; empty selects "fermi", the
	// paper's pairwise-comparison process.  See UpdateRules() for the
	// registry.
	UpdateRule string
	// Topology names the interaction graph restricting which SSets meet in
	// game play and learning, with optional colon-separated parameters
	// ("ring:8", "torus:moore", "smallworld:6:0.2").  Empty selects
	// "wellmixed", the paper's model, which is bit-identical per seed to
	// the pre-topology engines.  See Topologies() for the registry and
	// DescribeTopology for the per-family parameter syntax.
	Topology string
	// CheckpointPath, when non-empty, makes the run write a resumable
	// checkpoint of its final state to this file; combined with
	// CheckpointEvery it also receives periodic mid-run checkpoints.
	// ResumeSimulation continues a run from such a file bit-identically.
	CheckpointPath string
	// CheckpointEvery writes a mid-run checkpoint to CheckpointPath every
	// this many generations (0 = final state only).  Each write atomically
	// replaces the previous one, so an interrupted run can always be
	// resumed from the last completed checkpoint.
	CheckpointEvery int
	// CheckpointLabel is free-form metadata recorded in the checkpoint.
	CheckpointLabel string
	// FaultPlan, when non-empty, arms a deterministic fault-injection plan
	// in the spec grammar of docs/FAULT_TOLERANCE.md — for example
	// "crash@40:r0" (rank 0 dies at generation 40) or "rand:3" (three
	// seed-derived events).  A given (plan, seed) pair replays identically.
	// The serial engine is the fault model's rank 0, so only crash events
	// targeting rank 0 apply here; drops and delays never fire.
	FaultPlan string
	// MaxRestarts, when positive, runs the simulation under the supervisor:
	// a transient failure (an injected fault) is recovered from the newest
	// checkpoint segment up to MaxRestarts times, and the recovered run is
	// bit-identical to a fault-free one.  Zero disables recovery — the
	// first failure is final.
	MaxRestarts int
	// SegmentEvery is the supervisor's checkpoint cadence in generations;
	// zero keeps CheckpointEvery.  Only meaningful with MaxRestarts > 0.
	SegmentEvery int
}

// Sample is one abundance observation of the population.
type Sample struct {
	Generation          int
	DistinctStrategies  int
	TopStrategy         string
	TopFraction         float64
	WSLSFraction        float64
	TFTFraction         float64
	AllDFraction        float64
	MeanDefectingStates float64
}

// SimulationResult is the outcome of Simulate.
type SimulationResult struct {
	Generations     int
	FinalStrategies []string
	Samples         []Sample
	// PCEvents, Adoptions and Mutations count the evolutionary events that
	// occurred.
	PCEvents  int
	Adoptions int
	Mutations int
	// GamesPlayed is the number of two-player IPD games executed.
	GamesPlayed int64
	// Metrics is the run's flat observability export: pair-cache traffic,
	// the kernel-mode mix and the evolutionary event counts.
	Metrics Metrics
}

// Metrics is the flat per-run observability export shared by both engines:
// pair-cache traffic, the kernel-mode game mix (scalar, cycle-closing and
// bit-sliced batch), the evolutionary event counts and the fault-tolerance
// counters.  For the parallel engine the cache and kernel counters are
// summed over the SSet ranks.
type Metrics struct {
	// Generations is the number of generations the counters cover.
	Generations int
	// CachePlays, CacheHits, CacheMisses, CacheBypassed and CacheEvicted
	// describe persistent pair-cache traffic; all zero when no cache ran.
	CachePlays    int64
	CacheHits     int64
	CacheMisses   int64
	CacheBypassed int64
	CacheEvicted  int64
	// ScalarGames, CycleGames and BatchGames split the executed games by
	// kernel; BatchCalls counts SWAR batch invocations, so
	// BatchGames/BatchCalls/64 is the mean lane occupancy (see
	// BatchLaneOccupancy).
	ScalarGames int64
	CycleGames  int64
	BatchGames  int64
	BatchCalls  int64
	// PCEvents, Adoptions and Mutations count the evolutionary events.
	PCEvents  int
	Adoptions int
	Mutations int
	// Restarts, RetriedSends, DroppedMessages, DelayedMessages and
	// RecoveryNanos are the fault-tolerance counters: supervised relaunches
	// from a checkpoint, injected-fault send retries/drops/delays summed
	// over ranks, and the supervisor's recovery wall time.  All zero on a
	// fault-free run.
	Restarts        int
	RetriedSends    int64
	DroppedMessages int64
	DelayedMessages int64
	RecoveryNanos   int64
}

// BatchLaneOccupancy returns the mean fraction of the 64 SWAR lanes filled
// per batch kernel call (0 when the batch kernel never ran).
func (m Metrics) BatchLaneOccupancy() float64 {
	return fitness.Metrics{BatchGames: m.BatchGames, BatchCalls: m.BatchCalls}.BatchLaneOccupancy()
}

// Merge folds another run's (or rank's) metrics into m, with the same
// semantics as the engines' internal merge: every counter is summed and
// Generations is taken as the maximum, so merging the ranks of one run
// keeps its generation count while the batch-lane occupancy re-weights
// itself by the combined BatchGames/BatchCalls.  Ensemble aggregation uses
// it to fold per-replicate metrics into one envelope.
func (m *Metrics) Merge(o Metrics) {
	a := m.toInternal()
	a.Merge(o.toInternal())
	*m = metricsFromInternal(a)
}

// toInternal maps the facade metrics back onto the internal flat struct.
func (m Metrics) toInternal() fitness.Metrics {
	return fitness.Metrics{
		Generations:   m.Generations,
		CachePlays:    m.CachePlays,
		CacheHits:     m.CacheHits,
		CacheMisses:   m.CacheMisses,
		CacheBypassed: m.CacheBypassed,
		CacheEvicted:  m.CacheEvicted,
		ScalarGames:   m.ScalarGames,
		CycleGames:    m.CycleGames,
		BatchGames:    m.BatchGames,
		BatchCalls:    m.BatchCalls,
		PCEvents:      m.PCEvents,
		Adoptions:     m.Adoptions,
		Mutations:     m.Mutations,

		Restarts:        m.Restarts,
		RetriedSends:    m.RetriedSends,
		DroppedMessages: m.DroppedMessages,
		DelayedMessages: m.DelayedMessages,
		RecoveryNanos:   m.RecoveryNanos,
	}
}

func metricsFromInternal(m fitness.Metrics) Metrics {
	return Metrics{
		Generations:   m.Generations,
		CachePlays:    m.CachePlays,
		CacheHits:     m.CacheHits,
		CacheMisses:   m.CacheMisses,
		CacheBypassed: m.CacheBypassed,
		CacheEvicted:  m.CacheEvicted,
		ScalarGames:   m.ScalarGames,
		CycleGames:    m.CycleGames,
		BatchGames:    m.BatchGames,
		BatchCalls:    m.BatchCalls,
		PCEvents:      m.PCEvents,
		Adoptions:     m.Adoptions,
		Mutations:     m.Mutations,

		Restarts:        m.Restarts,
		RetriedSends:    m.RetriedSends,
		DroppedMessages: m.DroppedMessages,
		DelayedMessages: m.DelayedMessages,
		RecoveryNanos:   m.RecoveryNanos,
	}
}

// WSLSFraction returns the final fraction of SSets holding the canonical
// Win-Stay Lose-Shift strategy.
func (r SimulationResult) WSLSFraction() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	return r.Samples[len(r.Samples)-1].WSLSFraction
}

func (c SimulationConfig) toInternal() (population.Config, error) {
	rounds := c.Rounds
	if rounds == 0 {
		rounds = game.DefaultRounds
	}
	evalMode, err := c.EvalMode.toInternal()
	if err != nil {
		return population.Config{}, err
	}
	spec, rule, err := resolveScenario(c.Game, c.Payoff, c.UpdateRule)
	if err != nil {
		return population.Config{}, err
	}
	topo, err := topology.Parse(c.Topology)
	if err != nil {
		return population.Config{}, fmt.Errorf("evogame: %w", err)
	}
	kernel, err := game.ParseKernelMode(c.Kernel)
	if err != nil {
		return population.Config{}, fmt.Errorf("evogame: %w", err)
	}
	cfg := population.Config{
		NumSSets:      c.NumSSets,
		AgentsPerSSet: c.AgentsPerSSet,
		MemorySteps:   c.MemorySteps,
		Rounds:        rounds,
		Noise:         c.Noise,
		Game:          spec,
		UpdateRule:    rule,
		Topology:      topo,
		PCRate:        c.PCRate,
		MutationRate:  c.MutationRate,
		Beta:          c.Beta,
		Seed:          c.Seed,
		SampleEvery:   c.SampleEvery,
		EvalMode:      evalMode,
		Kernel:        kernel,
		Workers:       c.Workers,

		CheckpointPath:  c.CheckpointPath,
		CheckpointEvery: c.CheckpointEvery,
		CheckpointLabel: c.CheckpointLabel,
	}
	if len(c.InitialStrategies) > 0 {
		strats, err := parseStrategies(c.MemorySteps, c.InitialStrategies)
		if err != nil {
			return population.Config{}, err
		}
		cfg.InitialStrategies = strats
	}
	if c.FaultPlan != "" {
		// The serial engine is the fault model's single rank (rank 0).
		plan, err := faults.Parse(c.FaultPlan, c.Seed, 1)
		if err != nil {
			return population.Config{}, fmt.Errorf("evogame: %w", err)
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

func parseStrategies(memSteps int, moves []string) ([]strategy.Strategy, error) {
	out := make([]strategy.Strategy, len(moves))
	for i, s := range moves {
		p, err := strategy.ParsePure(memSteps, s)
		if err != nil {
			return nil, fmt.Errorf("evogame: initial strategy %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

func renderStrategies(strats []strategy.Strategy) []string {
	out := make([]string, len(strats))
	for i, s := range strats {
		out[i] = s.String()
	}
	return out
}

// Simulate runs the serial reference engine.  With cfg.MaxRestarts > 0 it
// runs under the supervisor (see SimulationConfig.MaxRestarts): transient
// failures are recovered from checkpoints and the result is bit-identical
// to a fault-free run, with the recovery effort reported in Metrics.
func Simulate(ctx context.Context, cfg SimulationConfig) (SimulationResult, error) {
	internal, err := cfg.toInternal()
	if err != nil {
		return SimulationResult{}, err
	}
	if cfg.MaxRestarts > 0 {
		pol := supervise.Policy{MaxRestarts: cfg.MaxRestarts, SegmentEvery: cfg.SegmentEvery}
		res, _, err := supervise.RunSerial(ctx, internal, cfg.Generations, pol)
		if err != nil {
			return SimulationResult{}, err
		}
		return serialResultFromInternal(res), nil
	}
	model, err := population.New(internal)
	if err != nil {
		return SimulationResult{}, err
	}
	return runSerial(ctx, model, cfg.Generations)
}

// ResumeSimulation continues a serial run from a checkpoint file for
// cfg.Generations additional generations.  The configuration must describe
// the original run (the snapshot's recorded identity — population shape,
// seed, game, payoff, update rule and topology — is verified against it;
// parameters the snapshot does not record, such as noise and rounds, must
// simply be passed identically), and InitialStrategies must be empty: the
// strategy table comes from the checkpoint, typed, so mixed-strategy
// populations survive the round trip.
//
// For a resumable checkpoint (format v4, written by the serial engine) the
// continuation is bit-identical: checkpointing after N generations and
// resuming for N more reproduces exactly the strategy table and event
// counts of an uninterrupted 2N-generation run.  A final-only checkpoint
// (format v3 or older, which predates the recorded RNG streams) still
// restores as a warm start — the typed strategy table and generation
// counter carry over, but the random streams restart from cfg.Seed.
func ResumeSimulation(ctx context.Context, path string, cfg SimulationConfig) (SimulationResult, error) {
	if len(cfg.InitialStrategies) > 0 {
		return SimulationResult{}, fmt.Errorf("evogame: ResumeSimulation takes the strategy table from the checkpoint; InitialStrategies must be empty")
	}
	internal, err := cfg.toInternal()
	if err != nil {
		return SimulationResult{}, err
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		return SimulationResult{}, fmt.Errorf("evogame: %w", err)
	}
	model, err := population.Restore(internal, snap)
	if err != nil {
		return SimulationResult{}, fmt.Errorf("evogame: %w", err)
	}
	return runSerial(ctx, model, cfg.Generations)
}

// runSerial drives a built serial model and maps its result onto the
// facade's types; Simulate and ResumeSimulation share it.
func runSerial(ctx context.Context, model *population.Model, generations int) (SimulationResult, error) {
	res, err := model.Run(ctx, generations)
	if err != nil {
		return SimulationResult{}, err
	}
	return serialResultFromInternal(res), nil
}

// serialResultFromInternal maps a serial-engine result onto the facade's
// types; the single-run paths and RunEnsemble share it.
func serialResultFromInternal(res population.Result) SimulationResult {
	out := SimulationResult{
		Generations:     res.Generations,
		FinalStrategies: renderStrategies(res.FinalStrategies),
		PCEvents:        res.NatureStats.PCEvents,
		Adoptions:       res.NatureStats.Adoptions,
		Mutations:       res.NatureStats.Mutations,
		GamesPlayed:     res.TotalGamesPlayed,
		Metrics:         metricsFromInternal(res.Metrics),
	}
	for _, s := range res.Samples {
		out.Samples = append(out.Samples, Sample{
			Generation:          s.Generation,
			DistinctStrategies:  s.Distinct,
			TopStrategy:         s.TopStrategy,
			TopFraction:         s.TopFraction,
			WSLSFraction:        s.WSLSFraction,
			TFTFraction:         s.TFTFraction,
			AllDFraction:        s.AllDFraction,
			MeanDefectingStates: s.MeanDefectingStates,
		})
	}
	return out
}

// ParallelConfig configures the distributed engine.
type ParallelConfig struct {
	// Ranks is the total number of ranks including the Nature Agent (>= 2).
	Ranks int
	// WorkersPerRank bounds the worker goroutines used for game play inside
	// each rank.  Zero selects GOMAXPROCS; negative values are rejected.
	WorkersPerRank int
	// OptimizationLevel selects the Figure 3 optimization level 0..3
	// (0 = original, 1 = non-blocking comm, 2 = + state lookup,
	// 3 = + fused fitness).  Use 3 for production runs.
	OptimizationLevel int

	NumSSets      int
	AgentsPerSSet int
	MemorySteps   int
	Rounds        int
	Noise         float64
	PCRate        float64
	MutationRate  float64
	Beta          float64
	Generations   int
	Seed          uint64
	// InitialStrategies optionally fixes the starting strategy table.
	InitialStrategies []string
	// SkipFitnessWhenIdle evaluates fitness only on learning generations.
	SkipFitnessWhenIdle bool
	// EvalMode selects full, cached or incremental fitness evaluation; all
	// modes produce identical results for identical seeds.
	EvalMode EvalMode
	// Kernel selects the deterministic-game inner loop exactly as in
	// SimulationConfig ("" / "auto" / "full-replay" / "batch").
	// Optimization levels below 2 always replay in full, preserving the
	// Figure 3 ablation's original kernel.
	Kernel string
	// Game, Payoff, UpdateRule and Topology select the scenario, exactly as
	// in SimulationConfig; empty values are the paper's IPD + Fermi +
	// well-mixed defaults.
	Game       string
	Payoff     []float64
	UpdateRule string
	Topology   string
	// CheckpointPath, CheckpointEvery and CheckpointLabel configure
	// resumable checkpoints exactly as in SimulationConfig; the Nature
	// Agent (rank 0) writes them.  ResumeParallelSimulation continues a
	// run from such a file bit-identically.
	CheckpointPath  string
	CheckpointEvery int
	CheckpointLabel string
	// FaultPlan, when non-empty, arms a deterministic fault-injection plan
	// in the spec grammar of docs/FAULT_TOLERANCE.md — crashes, message
	// drops and message delays at chosen (generation, rank) points, for
	// example "crash@40:r1,drop@10:r2:x3".  Events are derived from Seed,
	// so a given (plan, seed) pair replays identically.
	FaultPlan string
	// MaxRestarts, when positive, runs the simulation under the
	// supervisor: transient failures (injected faults, dead ranks, expired
	// communication deadlines) are recovered from the newest checkpoint
	// segment up to MaxRestarts times, and the recovered run is
	// bit-identical to a fault-free one.  Zero disables recovery.
	MaxRestarts int
	// SegmentEvery is the supervisor's checkpoint cadence in generations;
	// zero keeps CheckpointEvery.  Only meaningful with MaxRestarts > 0.
	SegmentEvery int
	// CommDeadlineSeconds bounds every blocking receive in the
	// message-passing fabric: a rank blocked longer fails with a deadline
	// error instead of hanging (zero means no deadline).  Dead peers are
	// detected and propagated regardless, so this is a backstop against
	// silent stalls, not the primary failure detector.
	CommDeadlineSeconds float64
}

// RankSummary reports one rank's work and communication.
type RankSummary struct {
	Rank             int
	LocalSSets       int
	GamesPlayed      int64
	ComputeSeconds   float64
	CommSeconds      float64
	MessagesSent     int64
	MessagesReceived int64
	BytesSent        int64
}

// ParallelResult is the outcome of SimulateParallel.
type ParallelResult struct {
	Generations      int
	FinalStrategies  []string
	WallClockSeconds float64
	// ComputeSeconds and CommSeconds are the mean per-rank times over the
	// SSet ranks (the breakdown of the paper's Figure 5).
	ComputeSeconds float64
	CommSeconds    float64
	TotalGames     int64
	PCEvents       int
	Adoptions      int
	Mutations      int
	Ranks          []RankSummary
	// Metrics is the run's flat observability export, summed over the SSet
	// ranks (see Metrics).
	Metrics Metrics
}

// toInternal maps the facade's parallel configuration onto the internal
// engine configuration, resolving scenario names and eval mode.
func (c ParallelConfig) toInternal() (parallel.Config, error) {
	if c.OptimizationLevel < 0 || c.OptimizationLevel > int(parallel.OptFusedFitness) {
		return parallel.Config{}, fmt.Errorf("evogame: optimization level %d out of range [0,3]", c.OptimizationLevel)
	}
	rounds := c.Rounds
	if rounds == 0 {
		rounds = game.DefaultRounds
	}
	evalMode, err := c.EvalMode.toInternal()
	if err != nil {
		return parallel.Config{}, err
	}
	spec, rule, err := resolveScenario(c.Game, c.Payoff, c.UpdateRule)
	if err != nil {
		return parallel.Config{}, err
	}
	topo, err := topology.Parse(c.Topology)
	if err != nil {
		return parallel.Config{}, fmt.Errorf("evogame: %w", err)
	}
	kernel, err := game.ParseKernelMode(c.Kernel)
	if err != nil {
		return parallel.Config{}, fmt.Errorf("evogame: %w", err)
	}
	internal := parallel.Config{
		Ranks:               c.Ranks,
		WorkersPerRank:      c.WorkersPerRank,
		EvalMode:            evalMode,
		Kernel:              kernel,
		Game:                spec,
		UpdateRule:          rule,
		Topology:            topo,
		NumSSets:            c.NumSSets,
		AgentsPerSSet:       c.AgentsPerSSet,
		MemorySteps:         c.MemorySteps,
		Rounds:              rounds,
		Noise:               c.Noise,
		PCRate:              c.PCRate,
		MutationRate:        c.MutationRate,
		Beta:                c.Beta,
		Generations:         c.Generations,
		Seed:                c.Seed,
		OptLevel:            parallel.OptLevel(c.OptimizationLevel),
		SkipFitnessWhenIdle: c.SkipFitnessWhenIdle,

		CheckpointPath:  c.CheckpointPath,
		CheckpointEvery: c.CheckpointEvery,
		CheckpointLabel: c.CheckpointLabel,
	}
	if len(c.InitialStrategies) > 0 {
		strats, err := parseStrategies(c.MemorySteps, c.InitialStrategies)
		if err != nil {
			return parallel.Config{}, err
		}
		internal.InitialStrategies = strats
	}
	if c.CommDeadlineSeconds < 0 {
		return parallel.Config{}, fmt.Errorf("evogame: CommDeadlineSeconds must be non-negative, got %v", c.CommDeadlineSeconds)
	}
	internal.CommDeadline = time.Duration(c.CommDeadlineSeconds * float64(time.Second))
	if c.FaultPlan != "" {
		plan, err := faults.Parse(c.FaultPlan, c.Seed, c.Ranks)
		if err != nil {
			return parallel.Config{}, fmt.Errorf("evogame: %w", err)
		}
		internal.Faults = plan
	}
	return internal, nil
}

// SimulateParallel runs the distributed engine.  With cfg.MaxRestarts > 0
// it runs under the supervisor (see ParallelConfig.MaxRestarts): transient
// failures are recovered from checkpoints and the result is bit-identical
// to a fault-free run, with the recovery effort reported in Metrics.
func SimulateParallel(cfg ParallelConfig) (ParallelResult, error) {
	internal, err := cfg.toInternal()
	if err != nil {
		return ParallelResult{}, err
	}
	if cfg.MaxRestarts > 0 {
		pol := supervise.Policy{MaxRestarts: cfg.MaxRestarts, SegmentEvery: cfg.SegmentEvery}
		res, _, err := supervise.RunParallel(internal, pol)
		if err != nil {
			return ParallelResult{}, err
		}
		return parallelResultFromInternal(res), nil
	}
	return runParallel(internal)
}

// ResumeParallelSimulation continues a distributed run from a checkpoint
// file for cfg.Generations additional generations, with the same contract
// as ResumeSimulation: the configuration must describe the original run,
// InitialStrategies must be empty, and a resumable parallel-engine
// checkpoint continues bit-identically (the Nature Agent's stream and event
// counters are restored, and the SSet ranks' per-generation noise streams
// are re-derived from the recorded generation).  A final-only checkpoint
// restores as a warm start from its typed strategy table.
func ResumeParallelSimulation(path string, cfg ParallelConfig) (ParallelResult, error) {
	if len(cfg.InitialStrategies) > 0 {
		return ParallelResult{}, fmt.Errorf("evogame: ResumeParallelSimulation takes the strategy table from the checkpoint; InitialStrategies must be empty")
	}
	internal, err := cfg.toInternal()
	if err != nil {
		return ParallelResult{}, err
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		return ParallelResult{}, fmt.Errorf("evogame: %w", err)
	}
	internal.Resume = &snap
	return runParallel(internal)
}

// runParallel executes a resolved distributed configuration and maps the
// result onto the facade's types; SimulateParallel and
// ResumeParallelSimulation share it.
func runParallel(internal parallel.Config) (ParallelResult, error) {
	res, err := parallel.Run(internal)
	if err != nil {
		return ParallelResult{}, err
	}
	return parallelResultFromInternal(res), nil
}

// parallelResultFromInternal maps a distributed-engine result onto the
// facade's types; the single-run paths and RunEnsemble share it.
func parallelResultFromInternal(res parallel.Result) ParallelResult {
	out := ParallelResult{
		Generations:      res.Generations,
		FinalStrategies:  renderStrategies(res.FinalStrategies),
		WallClockSeconds: res.WallClock.Seconds(),
		ComputeSeconds:   res.ComputeTime().Seconds(),
		CommSeconds:      res.CommTime().Seconds(),
		TotalGames:       res.TotalGames,
		PCEvents:         res.NatureStats.PCEvents,
		Adoptions:        res.NatureStats.Adoptions,
		Mutations:        res.NatureStats.Mutations,
		Metrics:          metricsFromInternal(res.Metrics),
	}
	for _, r := range res.Ranks {
		out.Ranks = append(out.Ranks, RankSummary{
			Rank:             r.Rank,
			LocalSSets:       r.LocalSSets,
			GamesPlayed:      r.GamesPlayed,
			ComputeSeconds:   r.Compute.Seconds(),
			CommSeconds:      r.Comm.Seconds(),
			MessagesSent:     r.CommStats.SendCount,
			MessagesReceived: r.CommStats.RecvCount,
			BytesSent:        r.CommStats.BytesSent,
		})
	}
	return out
}

// NamedStrategy returns the move-table string of a built-in strategy
// ("allc", "alld", "tft", "wsls", "grim", "tf2t", "alternator") for the
// given memory depth.  Mixed strategies ("gtft") cannot be rendered as a
// move table and return an error.
func NamedStrategy(name string, memSteps int) (string, error) {
	s, err := strategy.ByName(name, memSteps)
	if err != nil {
		return "", err
	}
	pure, ok := s.(*strategy.Pure)
	if !ok {
		return "", fmt.Errorf("evogame: strategy %q is not a pure strategy", name)
	}
	return pure.String(), nil
}

// StrategySpaceSize returns the number of game states (4^n) and the base-2
// logarithm of the number of pure strategies for the given memory depth —
// the quantities of the paper's Table IV.
func StrategySpaceSize(memSteps int) (states int, log2Strategies int, err error) {
	if memSteps < 1 || memSteps > MaxMemorySteps {
		return 0, 0, fmt.Errorf("evogame: memory steps %d out of range [1,%d]", memSteps, MaxMemorySteps)
	}
	states = game.NumStates(memSteps)
	return states, strategy.NumPureStrategiesLog2(memSteps), nil
}

// ClusterSummary describes one cluster of the final population, in the
// spirit of the paper's Figure 2 visualisation.
type ClusterSummary struct {
	// Size is the number of strategies in the cluster.
	Size int
	// Fraction is the share of the population in the cluster.
	Fraction float64
	// Centroid is the per-state defection frequency of the cluster (values
	// near 0 mean the cluster cooperates in that state).
	Centroid []float64
	// Representative is the most common move-table string in the cluster.
	Representative string
}

// ClusterStrategies groups strategy move-table strings into k clusters with
// Lloyd k-means, returning the clusters ordered from largest to smallest.
func ClusterStrategies(strategies []string, k int, seed uint64) ([]ClusterSummary, error) {
	if len(strategies) == 0 {
		return nil, fmt.Errorf("evogame: no strategies to cluster")
	}
	dim := len(strategies[0])
	rows := make([][]bool, len(strategies))
	for i, s := range strategies {
		if len(s) != dim {
			return nil, fmt.Errorf("evogame: strategy %d has length %d, want %d", i, len(s), dim)
		}
		row := make([]bool, dim)
		for j := 0; j < dim; j++ {
			switch s[j] {
			case '0':
			case '1':
				row[j] = true
			default:
				return nil, fmt.Errorf("evogame: strategy %d has invalid character %q", i, s[j])
			}
		}
		rows[i] = row
	}
	res, err := kmeans.Cluster(kmeans.BinaryPoints(rows), kmeans.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	summaries := make([]ClusterSummary, k)
	counts := make([]map[string]int, k)
	for i := range counts {
		counts[i] = make(map[string]int)
	}
	for i, cluster := range res.Assignments {
		counts[cluster][strategies[i]]++
	}
	for ci := 0; ci < k; ci++ {
		best, bestCount := "", -1
		for s, c := range counts[ci] {
			if c > bestCount || (c == bestCount && s < best) {
				best, bestCount = s, c
			}
		}
		summaries[ci] = ClusterSummary{
			Size:           res.Sizes[ci],
			Fraction:       float64(res.Sizes[ci]) / float64(len(strategies)),
			Centroid:       res.Centroids[ci],
			Representative: best,
		}
	}
	// Order largest first (simple insertion sort keeps the facade free of
	// sort.Slice closures over index pairs).
	for i := 1; i < len(summaries); i++ {
		for j := i; j > 0 && summaries[j].Size > summaries[j-1].Size; j-- {
			summaries[j], summaries[j-1] = summaries[j-1], summaries[j]
		}
	}
	return summaries, nil
}

// ArtifactInfo describes one regenerable paper artifact of the registry
// behind cmd/paperkit: a named sweep whose committed tables CI keeps
// bit-identical to regeneration.
type ArtifactInfo struct {
	// Name is the registry key (pass it to paperkit's -artifact flag).
	Name string
	// Title is a short human description of the sweep.
	Title string
	// Figure names the paper figure the artifact backs.
	Figure string
	// Description explains the sweep axis and what the table shows.
	Description string
	// Claim is the determinism statement the rendered table pins.
	Claim string
	// QuickCells and FullCells count the grid points of the committed
	// quick grid and the paper-scale full grid.
	QuickCells int
	// FullCells counts the full grid's cells (see QuickCells).
	FullCells int
}

// Artifacts lists the registered paper artifacts in rendering order; these
// are the sweeps `paperkit run` regenerates and `paperkit verify` pins.
func Artifacts() []string {
	return artifact.Names()
}

// DescribeArtifact returns the registry entry of one paper artifact by
// name; Artifacts lists the valid names.
func DescribeArtifact(name string) (ArtifactInfo, error) {
	a, err := artifact.Lookup(name)
	if err != nil {
		return ArtifactInfo{}, err
	}
	return ArtifactInfo{
		Name:        a.Name,
		Title:       a.Title,
		Figure:      a.Figure,
		Description: a.Description,
		Claim:       a.Claim,
		QuickCells:  len(a.Grid(true)),
		FullCells:   len(a.Grid(false)),
	}, nil
}
