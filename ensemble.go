package evogame

import (
	"context"
	"fmt"

	"evogame/internal/ensemble"
	"evogame/internal/faults"
)

// EnsembleConfig configures RunEnsemble: many independent replicates of one
// simulation configuration run concurrently under a bounded worker pool —
// the shape of every averaged result in the paper.  Exactly one of
// Simulation and Parallel selects the engine and carries the per-run
// configuration; its Seed is the base seed replicate seeds derive from
// (replicate 0 runs the base seed itself) and its Generations field sets
// the run length.
//
// Worker budget: ensemble-level concurrency and per-run worker fan-out
// multiply, so by default the two tiers split GOMAXPROCS instead of
// oversubscribing it — EnsembleWorkers resolves to min(Replicates,
// GOMAXPROCS), and an unset per-run Workers / WorkersPerRank resolves to
// GOMAXPROCS divided by the resolved ensemble workers (floor 1).
// Explicitly set values win on both tiers.
type EnsembleConfig struct {
	// Replicates is the number of independent runs (>= 1); replicate k runs
	// with a seed derived deterministically from the base seed and k.
	Replicates int
	// EnsembleWorkers bounds how many replicates run concurrently.  Zero
	// selects min(Replicates, GOMAXPROCS); negative values are rejected.
	EnsembleWorkers int
	// PrivateCaches disables cross-run cache sharing: every replicate
	// builds its own pair cache exactly as a solo run would.  Results are
	// identical either way; the flag exists for benchmarking the sharing
	// and for bounding memory per run.
	PrivateCaches bool
	// Simulation, when non-nil, runs the replicates on the serial engine.
	Simulation *SimulationConfig
	// Parallel, when non-nil, runs the replicates on the distributed
	// engine.
	Parallel *ParallelConfig
	// FaultPlan, when non-empty, arms a deterministic fault-injection plan
	// in every replicate (same spec grammar as SimulationConfig.FaultPlan).
	// The spec is instantiated per replicate with that replicate's derived
	// seed, so each replicate injects its own reproducible fault sequence.
	// Fault injection is ensemble-level here: the engine configs' own
	// FaultPlan must stay empty (one shared plan would race across
	// concurrent replicates).
	FaultPlan string
	// MaxRestarts, when positive, runs every replicate under the
	// supervisor: transiently-failed replicates are recovered from their
	// newest checkpoint segment up to MaxRestarts times before counting as
	// permanently failed.  Zero disables recovery.
	MaxRestarts int
	// SegmentEvery is the supervisor's checkpoint cadence in generations;
	// only meaningful with MaxRestarts > 0.
	SegmentEvery int
}

// EnsembleTrajectoryPoint is one generation of the ensemble-aggregated
// trajectory: mean and standard deviation over replicates at one sampled
// generation (serial-engine ensembles only; the distributed engine does not
// record per-generation samples).
type EnsembleTrajectoryPoint struct {
	// Generation is the sampled generation, identical across replicates.
	Generation int
	// CooperationMean is the mean over replicates of 1 - MeanDefectingStates
	// (the fraction of strategy-table states prescribing cooperation), and
	// CooperationStd its sample standard deviation.
	CooperationMean float64
	CooperationStd  float64
	// WSLSMean and WSLSStd aggregate the fraction of SSets holding the
	// canonical Win-Stay Lose-Shift strategy.
	WSLSMean float64
	WSLSStd  float64
}

// EnsembleResult is the outcome of RunEnsemble: every replicate's full
// result (each bit-identical to running its seed solo) plus deterministic
// aggregates.
type EnsembleResult struct {
	// Seeds[k] is the derived seed replicate k ran with.
	Seeds []uint64
	// Serial holds the per-replicate results of a serial-engine ensemble
	// (nil for a distributed one), indexed by replicate.
	Serial []SimulationResult
	// Parallel holds the per-replicate results of a distributed-engine
	// ensemble (nil for a serial one), indexed by replicate.
	Parallel []ParallelResult
	// Errors[k] is non-nil when replicate k failed permanently (after any
	// supervised restarts were exhausted); its slot in Serial / Parallel is
	// then at best partial and is excluded from Trajectory and Metrics.
	// The slice always has one entry per replicate.
	Errors []error
	// Trajectory is the mean/std cooperation trajectory over the completed
	// replicates, one point per sampled generation (serial ensembles; set
	// SimulationConfig.SampleEvery for more than the final point).
	Trajectory []EnsembleTrajectoryPoint
	// Metrics merges every completed replicate's flat metrics (counters
	// summed; see Metrics.Merge).
	Metrics Metrics
	// EnsembleWorkers and RunWorkers record the resolved worker budget.
	EnsembleWorkers int
	RunWorkers      int
	// WallClockSeconds is the end-to-end ensemble time.
	WallClockSeconds float64
}

// RunEnsemble runs cfg.Replicates independent replicates of the configured
// simulation concurrently and aggregates them.  Each replicate is
// bit-identical to running its derived seed solo: for noiseless cached
// configurations all replicates share one pair-cache store (replicate k is
// served every pair any earlier replicate already played), while noisy or
// mixed configurations keep the engines' existing bypass so RNG streams
// never move.  Checkpointing is per-run and must be disabled in the base
// configuration.
//
// Failure degrades gracefully: a permanently-failed replicate is reported
// in EnsembleResult.Errors at its index while the other replicates
// complete and aggregate.  The returned error is the lowest-index failure
// (nil when all completed) and the partial result is always returned, so
// callers may inspect Errors and keep the survivors.  With
// cfg.MaxRestarts > 0 each replicate runs supervised and transient
// failures are recovered before they count.
func RunEnsemble(ctx context.Context, cfg EnsembleConfig) (EnsembleResult, error) {
	if (cfg.Simulation == nil) == (cfg.Parallel == nil) {
		return EnsembleResult{}, fmt.Errorf("evogame: RunEnsemble needs exactly one of Simulation and Parallel")
	}
	if cfg.Simulation != nil && (cfg.Simulation.FaultPlan != "" || cfg.Simulation.MaxRestarts != 0 || cfg.Simulation.SegmentEvery != 0) {
		return EnsembleResult{}, fmt.Errorf("evogame: RunEnsemble: fault injection and supervision are ensemble-level; set EnsembleConfig.FaultPlan / MaxRestarts / SegmentEvery, not SimulationConfig's")
	}
	if cfg.Parallel != nil && (cfg.Parallel.FaultPlan != "" || cfg.Parallel.MaxRestarts != 0 || cfg.Parallel.SegmentEvery != 0) {
		return EnsembleResult{}, fmt.Errorf("evogame: RunEnsemble: fault injection and supervision are ensemble-level; set EnsembleConfig.FaultPlan / MaxRestarts / SegmentEvery, not ParallelConfig's")
	}
	ecfg := ensemble.Config{
		Replicates:    cfg.Replicates,
		Workers:       cfg.EnsembleWorkers,
		PrivateCaches: cfg.PrivateCaches,
		MaxRestarts:   cfg.MaxRestarts,
		SegmentEvery:  cfg.SegmentEvery,
	}
	if cfg.FaultPlan != "" {
		spec := cfg.FaultPlan
		baseSeed, ranks := uint64(0), 1
		if cfg.Simulation != nil {
			baseSeed = cfg.Simulation.Seed
		} else {
			baseSeed, ranks = cfg.Parallel.Seed, cfg.Parallel.Ranks
		}
		// Validate the spec once up front so a bad plan fails the call
		// instead of every replicate.
		if _, err := faults.Parse(spec, baseSeed, ranks); err != nil {
			return EnsembleResult{}, fmt.Errorf("evogame: %w", err)
		}
		ecfg.ReplicateFaults = func(k int) *faults.Plan {
			plan, _ := faults.Parse(spec, ensemble.ReplicateSeed(baseSeed, k), ranks)
			return plan
		}
	}
	if cfg.Simulation != nil {
		internal, err := cfg.Simulation.toInternal()
		if err != nil {
			return EnsembleResult{}, err
		}
		res, err := ensemble.RunSerial(ctx, internal, cfg.Simulation.Generations, ecfg)
		if err != nil && res.Errors == nil {
			// Configuration error before any replicate ran.
			return EnsembleResult{}, fmt.Errorf("evogame: %w", err)
		}
		out := EnsembleResult{
			Seeds:            res.Seeds,
			Serial:           make([]SimulationResult, len(res.Runs)),
			Errors:           res.Errors,
			Metrics:          metricsFromInternal(res.Metrics),
			EnsembleWorkers:  res.EnsembleWorkers,
			RunWorkers:       res.RunWorkers,
			WallClockSeconds: res.WallClock.Seconds(),
		}
		for k, r := range res.Runs {
			out.Serial[k] = serialResultFromInternal(r)
		}
		for _, p := range res.Trajectory {
			out.Trajectory = append(out.Trajectory, EnsembleTrajectoryPoint{
				Generation:      p.Generation,
				CooperationMean: p.Cooperation,
				CooperationStd:  p.CooperationStd,
				WSLSMean:        p.WSLS,
				WSLSStd:         p.WSLSStd,
			})
		}
		if err != nil {
			return out, fmt.Errorf("evogame: %w", err)
		}
		return out, nil
	}
	internal, err := cfg.Parallel.toInternal()
	if err != nil {
		return EnsembleResult{}, err
	}
	res, err := ensemble.RunParallel(internal, ecfg)
	if err != nil && res.Errors == nil {
		return EnsembleResult{}, fmt.Errorf("evogame: %w", err)
	}
	out := EnsembleResult{
		Seeds:            res.Seeds,
		Parallel:         make([]ParallelResult, len(res.Runs)),
		Errors:           res.Errors,
		Metrics:          metricsFromInternal(res.Metrics),
		EnsembleWorkers:  res.EnsembleWorkers,
		RunWorkers:       res.RunWorkers,
		WallClockSeconds: res.WallClock.Seconds(),
	}
	for k, r := range res.Runs {
		out.Parallel[k] = parallelResultFromInternal(r)
	}
	if err != nil {
		return out, fmt.Errorf("evogame: %w", err)
	}
	return out, nil
}
