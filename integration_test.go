package evogame

// Cross-module integration tests: they exercise the public facade end to end
// and check that independently implemented components (serial engine,
// distributed engine, exact analysis, checkpointing, clustering) agree with
// each other on shared scenarios.

import (
	"bytes"
	"context"
	"testing"

	"evogame/internal/checkpoint"
	"evogame/internal/strategy"
)

// TestIntegrationSerialParallelMemoryTwo drives both engines through an
// identical memory-two scenario seeded with classic strategies and requires
// bit-identical histories.
func TestIntegrationSerialParallelMemoryTwo(t *testing.T) {
	grim := strategy.GRIM(2).String()
	wsls := strategy.WSLS(2).String()
	alld := strategy.AllD(2).String()
	initial := []string{grim, wsls, alld, wsls, grim, wsls, alld, wsls, wsls}

	serial, err := Simulate(context.Background(), SimulationConfig{
		NumSSets:          9,
		AgentsPerSSet:     3,
		MemorySteps:       2,
		Rounds:            80,
		PCRate:            1,
		MutationRate:      0.25,
		Beta:              1,
		Generations:       60,
		Seed:              17,
		InitialStrategies: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateParallel(ParallelConfig{
		Ranks:             4,
		NumSSets:          9,
		AgentsPerSSet:     3,
		MemorySteps:       2,
		Rounds:            80,
		PCRate:            1,
		MutationRate:      0.25,
		Beta:              1,
		Generations:       60,
		Seed:              17,
		OptimizationLevel: 3,
		InitialStrategies: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.FinalStrategies {
		if serial.FinalStrategies[i] != par.FinalStrategies[i] {
			t.Fatalf("memory-two engines diverge at SSet %d", i)
		}
	}
	if serial.Adoptions != par.Adoptions || serial.Mutations != par.Mutations {
		t.Fatal("event counts diverge between engines")
	}
}

// TestIntegrationCheckpointResume snapshots a finished run, restores it, and
// resumes the simulation from the restored table; the resumed run must be
// identical to a run that continued without the round trip.
func TestIntegrationCheckpointResume(t *testing.T) {
	base := SimulationConfig{
		NumSSets:      12,
		AgentsPerSSet: 2,
		MemorySteps:   1,
		Rounds:        50,
		PCRate:        1,
		MutationRate:  0.2,
		Beta:          1,
		Seed:          23,
	}

	// Phase one: run 40 generations and snapshot the final table.
	first := base
	first.Generations = 40
	res1, err := Simulate(context.Background(), first)
	if err != nil {
		t.Fatal(err)
	}
	strats := make([]strategy.Strategy, len(res1.FinalStrategies))
	for i, s := range res1.FinalStrategies {
		p, err := strategy.ParsePure(1, s)
		if err != nil {
			t.Fatal(err)
		}
		strats[i] = p
	}
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, checkpoint.Snapshot{
		Generation:  40,
		Seed:        base.Seed,
		MemorySteps: 1,
		Strategies:  strats,
		Label:       "integration",
	}); err != nil {
		t.Fatal(err)
	}

	// Phase two: restore and resume for 30 more generations with a fresh
	// seed (the restored table is the initial condition).
	snap, err := checkpoint.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored := make([]string, len(snap.Strategies))
	for i, s := range snap.Strategies {
		restored[i] = s.String()
	}
	resume := base
	resume.Generations = 30
	resume.Seed = 99
	resume.InitialStrategies = restored
	res2, err := Simulate(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}

	// Control: the same continuation without the checkpoint round trip.
	control := base
	control.Generations = 30
	control.Seed = 99
	control.InitialStrategies = res1.FinalStrategies
	res3, err := Simulate(context.Background(), control)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res2.FinalStrategies {
		if res2.FinalStrategies[i] != res3.FinalStrategies[i] {
			t.Fatalf("checkpoint round trip changed the dynamics at SSet %d", i)
		}
	}
}

// TestIntegrationExactPayoffPredictsSelection checks that the exact-payoff
// toolkit predicts the direction of selection the simulation engine actually
// takes: in an ALLC/ALLD population the exact payoffs favour ALLD, and the
// simulated population fixates on ALLD.
func TestIntegrationExactPayoffPredictsSelection(t *testing.T) {
	allc, _ := NamedStrategy("allc", 1)
	alld, _ := NamedStrategy("alld", 1)

	invades, err := CanInvade(allc, alld, 1, 50, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !invades {
		t.Fatal("exact analysis should predict that ALLD invades ALLC")
	}

	initial := make([]string, 10)
	for i := range initial {
		if i < 5 {
			initial[i] = allc
		} else {
			initial[i] = alld
		}
	}
	res, err := Simulate(context.Background(), SimulationConfig{
		NumSSets:          10,
		AgentsPerSSet:     1,
		MemorySteps:       1,
		Rounds:            50,
		PCRate:            1,
		MutationRate:      -1,
		Beta:              1,
		Generations:       300,
		Seed:              5,
		InitialStrategies: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Samples[len(res.Samples)-1]
	if final.AllDFraction != 1 {
		t.Fatalf("simulation did not fixate on ALLD (fraction %v) despite the exact prediction", final.AllDFraction)
	}
}

// TestIntegrationClusteringRecoversPlantedClusters plants two strategy
// groups in a population, runs no dynamics, and checks the clustering
// facade recovers them exactly.
func TestIntegrationClusteringRecoversPlantedClusters(t *testing.T) {
	wsls, _ := NamedStrategy("wsls", 1)
	alld, _ := NamedStrategy("alld", 1)
	initial := make([]string, 20)
	for i := range initial {
		if i < 15 {
			initial[i] = wsls
		} else {
			initial[i] = alld
		}
	}
	res, err := Simulate(context.Background(), SimulationConfig{
		NumSSets:          20,
		AgentsPerSSet:     1,
		MemorySteps:       1,
		Rounds:            10,
		PCRate:            -1,
		MutationRate:      -1,
		Generations:       5,
		Seed:              1,
		InitialStrategies: initial,
	})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := ClusterStrategies(res.FinalStrategies, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if clusters[0].Representative != wsls || clusters[0].Size != 15 {
		t.Fatalf("dominant cluster = %+v, want the planted WSLS group", clusters[0])
	}
	if clusters[1].Representative != alld || clusters[1].Size != 5 {
		t.Fatalf("minor cluster = %+v, want the planted ALLD group", clusters[1])
	}
}

// TestIntegrationTournamentAgreesWithExactPayoffs runs a noiseless
// tournament and checks every standing equals the sum of exact pairwise
// payoffs.
func TestIntegrationTournamentAgreesWithExactPayoffs(t *testing.T) {
	entrants, err := ClassicTournamentEntrants(1)
	if err != nil {
		t.Fatal(err)
	}
	standings, err := RunTournament(entrants, TournamentConfig{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range standings {
		expected := 0.0
		for name, table := range entrants {
			if name == s.Name {
				continue
			}
			pa, _, err := ExactPayoffs(entrants[s.Name], table, 1, 120, 0)
			if err != nil {
				t.Fatal(err)
			}
			expected += pa
		}
		if s.TotalScore != expected {
			t.Fatalf("%s: tournament score %v != exact sum %v", s.Name, s.TotalScore, expected)
		}
	}
}
