package evogame

// Golden gates over the committed paper-artifact tree (artifacts/): the
// quick-grid run envelopes and rendered tables are committed, so the repo
// itself proves its regenerability claim on every test run.  These tests
// are the in-process face of the CI `paperkit verify -quick` job.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"evogame/internal/artifact"
)

// artifactsDir is the committed artifact tree at the repository root.
const artifactsDir = "artifacts"

// TestArtifactRunsAreFresh classifies every committed quick-grid envelope
// against the registry: any missing or stale run means the registry and
// the committed tree have drifted apart (a grid was edited without
// regenerating, or an envelope was not committed).
func TestArtifactRunsAreFresh(t *testing.T) {
	plan, err := artifact.Plan(artifactsDir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 {
		t.Fatal("empty plan: registry has no quick runs")
	}
	for _, run := range plan {
		if run.State != artifact.StateFresh {
			t.Errorf("%s/%s#r%d is %v (want fresh): %s",
				run.Artifact, run.Cell, run.Replicate, run.State, run.Path)
		}
	}
}

// TestArtifactTablesMatchCommitted re-renders every quick table from the
// committed envelopes and fails on any byte difference — the same check
// `paperkit verify -quick` runs in CI, but in-process so `go test ./...`
// alone already enforces the golden files.
func TestArtifactTablesMatchCommitted(t *testing.T) {
	problems, err := artifact.VerifyTables(artifactsDir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("committed table drift: %s", p)
	}
}

// TestArtifactClaimsHoldOnCommittedTree asserts the two registry claims
// that the committed quick tables encode as shared state hashes: the
// Figure 3 ablation cells are all bit-identical, and scaling-study cells
// of one population size are rank-count independent.
func TestArtifactClaimsHoldOnCommittedTree(t *testing.T) {
	// Replicates run with different derived seeds, so the equivalence claims
	// compare the full per-replicate hash vector across cells: two cells are
	// "bit-identical" when replicate k of one matches replicate k of the
	// other, for every k.
	hashVectors := func(t *testing.T, name string) map[string]string {
		t.Helper()
		art, err := artifact.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		for _, cell := range art.Grid(true) {
			stats, err := artifact.CollectCell(artifactsDir, true, name, cell)
			if err != nil {
				t.Fatal(err)
			}
			var vec strings.Builder
			for _, r := range stats.Runs {
				vec.WriteString(r.StateHash)
				vec.WriteByte(' ')
			}
			out[cell.Key] = vec.String()
		}
		return out
	}

	t.Run("figure3-ablation-equivalence", func(t *testing.T) {
		vectors := hashVectors(t, "figure3_ablation")
		want := vectors["opt=0"]
		for key, vec := range vectors {
			if vec != want {
				t.Errorf("cell %s final states differ from opt=0: optimization levels are not equivalent", key)
			}
		}
	})

	t.Run("scaling-rank-independence", func(t *testing.T) {
		vectors := hashVectors(t, "scaling_study")
		bySize := make(map[string]map[string]bool)
		for key, vec := range vectors {
			size := strings.SplitN(key, "_", 2)[0] // "s=12_ranks=2" -> "s=12"
			if bySize[size] == nil {
				bySize[size] = make(map[string]bool)
			}
			bySize[size][vec] = true
		}
		for size, set := range bySize {
			if len(set) != 1 {
				t.Errorf("population %s: %d distinct final states across rank counts, want 1", size, len(set))
			}
		}
	})
}

// TestArtifactDeleteOneRegenerates is the acceptance round trip: copy one
// artifact's committed envelopes aside, delete one, re-run the incremental
// runner, and require (a) exactly the deleted replicate executed and (b)
// the regenerated envelope is byte-identical to the committed one.
func TestArtifactDeleteOneRegenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("regeneration run skipped in -short mode")
	}
	const name = "memory_sweep"
	art, err := artifact.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	cells := art.Grid(true)

	// Mirror the committed runs into a scratch artifact root.
	scratch := t.TempDir()
	src := artifact.RunDir(artifactsDir, true, name)
	dst := artifact.RunDir(scratch, true, name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("committed runs missing (run `paperkit run -quick`): %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	victim := artifact.EnvelopePath(scratch, true, name, cells[0], 0)
	committed, err := os.ReadFile(artifact.EnvelopePath(artifactsDir, true, name, cells[0], 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}

	reports, err := artifact.Execute(context.Background(), scratch, artifact.ExecuteOptions{
		Quick: true, Artifacts: []string{name},
	})
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	for _, r := range reports {
		executed += len(r.Executed)
	}
	if executed != 1 {
		t.Fatalf("executed %d runs after deleting one envelope, want exactly 1", executed)
	}

	regenerated, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regenerated, committed) {
		t.Fatalf("regenerated envelope differs from the committed one (%d vs %d bytes)",
			len(regenerated), len(committed))
	}
}
