package evogame

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and figure of the paper's evaluation section.  Workloads are scaled
// down so the full suite completes in minutes on a laptop; the benchtables
// command prints the corresponding rows/series, and EXPERIMENTS.md maps each
// benchmark to the paper's numbers.

import (
	"context"
	"fmt"
	"testing"

	"evogame/internal/baseline"
	"evogame/internal/cluster"
	"evogame/internal/fitness"
	"evogame/internal/game"
	"evogame/internal/parallel"
	"evogame/internal/perfmodel"
	"evogame/internal/population"
	"evogame/internal/strategy"
)

// BenchmarkTable1PayoffKernel exercises the Prisoner's Dilemma payoff
// resolution underlying Table I.
func BenchmarkTable1PayoffKernel(b *testing.B) {
	m := game.Standard()
	tab := m.Table()
	var sink float64
	for i := 0; i < b.N; i++ {
		my := game.Move(i & 1)
		opp := game.Move((i >> 1) & 1)
		sink += m.Payoff(my, opp) + tab[game.RoundCode(my, opp)]
	}
	_ = sink
}

// BenchmarkTable2StateIdentification measures the per-round state update and
// lookup for the memory-one state space of Table II, in both the original
// linear-search form and the optimized rolling form.
func BenchmarkTable2StateIdentification(b *testing.B) {
	for _, mode := range []game.StateMode{game.StateLinearSearch, game.StateRolling} {
		b.Run(mode.String(), func(b *testing.B) {
			table := game.NewStateTable(1)
			h := game.NewHistory(1)
			for i := 0; i < b.N; i++ {
				h.Push(game.Move(i&1), game.Move((i>>1)&1))
				_ = h.StateVia(mode, table)
			}
		})
	}
}

// BenchmarkTable3MemoryOneGames plays every pair of the sixteen memory-one
// strategies of Table III once.
func BenchmarkTable3MemoryOneGames(b *testing.B) {
	eng, err := game.NewEngine(game.EngineConfig{Rounds: game.DefaultRounds, MemorySteps: 1,
		StateMode: game.StateRolling, AccumMode: game.AccumLookup})
	if err != nil {
		b.Fatal(err)
	}
	all := strategy.AllMemoryOne()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range all {
			for _, y := range all {
				if _, err := eng.Play(x, y, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkTable4StrategySpace measures strategy-space accounting and random
// strategy generation across the memory depths of Table IV.
func BenchmarkTable4StrategySpace(b *testing.B) {
	for mem := 1; mem <= MaxMemorySteps; mem++ {
		b.Run(fmt.Sprintf("memory-%d", mem), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := StrategySpaceSize(mem); err != nil {
					b.Fatal(err)
				}
				_ = strategy.NumPureStrategies(mem)
			}
		})
	}
}

// BenchmarkTable5WSLSKernel plays WSLS against the classic strategies (the
// behaviour tabulated in Table V).
func BenchmarkTable5WSLSKernel(b *testing.B) {
	eng, err := game.NewEngine(game.EngineConfig{Rounds: game.DefaultRounds, MemorySteps: 1})
	if err != nil {
		b.Fatal(err)
	}
	wsls := strategy.WSLS(1)
	opponents := []strategy.Strategy{strategy.AllC(1), strategy.AllD(1), strategy.TFT(1), strategy.WSLS(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, opp := range opponents {
			if _, err := eng.Play(wsls, opp, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable6SSetRatio evaluates the SSets-per-processor efficiency
// model of Table VI.
func BenchmarkTable6SSetRatio(b *testing.B) {
	ratios := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		if _, err := RatioTable(ScalingOptions{}, ratios, 2048, 6, 2048); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableCapacity evaluates the memory-capacity check of Section V-C.
func BenchmarkTableCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CheckMemoryCapacity(MachineBlueGeneP, 32768, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Validation runs a scaled-down slice of the Figure 2
// validation study (WSLS emergence) per iteration: 32 SSets for 500
// generations, followed by the k-means clustering of the final population.
func BenchmarkFig2Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Simulate(context.Background(), SimulationConfig{
			NumSSets:      32,
			AgentsPerSSet: 4,
			MemorySteps:   1,
			Rounds:        DefaultRounds,
			Noise:         0.05,
			PCRate:        1,
			MutationRate:  0.05,
			Beta:          0.1,
			Generations:   500,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ClusterStrategies(res.FinalStrategies, 4, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3OptimizationLevels runs the same distributed workload at each
// of the four optimization levels of Figure 3.
func BenchmarkFig3OptimizationLevels(b *testing.B) {
	for lvl := parallel.OptOriginal; lvl <= parallel.OptFusedFitness; lvl++ {
		b.Run(lvl.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parallel.Run(parallel.Config{
					Ranks:         5,
					NumSSets:      48,
					AgentsPerSSet: 4,
					MemorySteps:   1,
					Rounds:        DefaultRounds,
					PCRate:        0.1,
					MutationRate:  0.05,
					Generations:   5,
					Seed:          1,
					OptLevel:      lvl,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4StrongScalingSSets runs the distributed engine with a growing
// population on a fixed rank count (the population-size axis of Figure 4)
// and, separately, evaluates the analytic model for the paper's populations.
func BenchmarkFig4StrongScalingSSets(b *testing.B) {
	for _, ssets := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("real-%dSSets", ssets), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parallel.Run(parallel.Config{
					Ranks:         5,
					NumSSets:      ssets,
					AgentsPerSSet: 4,
					MemorySteps:   1,
					Rounds:        DefaultRounds,
					PCRate:        0.1,
					MutationRate:  0.05,
					Generations:   3,
					Seed:          1,
					OptLevel:      parallel.OptFusedFitness,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("model-sweep", func(b *testing.B) {
		model := perfmodel.NewModel(cluster.BlueGeneP(), perfmodel.DefaultCalibration())
		procs := []int{64, 128, 256, 512, 1024, 2048}
		for i := 0; i < b.N; i++ {
			for _, ssets := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
				if _, err := model.StrongScaling(ssets, 6, procs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkFig5MemorySweep runs the memory-one .. memory-six workload of
// Figure 5 on the distributed engine.
func BenchmarkFig5MemorySweep(b *testing.B) {
	for mem := 1; mem <= MaxMemorySteps; mem++ {
		b.Run(fmt.Sprintf("memory-%d", mem), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parallel.Run(parallel.Config{
					Ranks:         5,
					NumSSets:      32,
					AgentsPerSSet: 4,
					MemorySteps:   mem,
					Rounds:        DefaultRounds,
					PCRate:        0.1,
					MutationRate:  0.05,
					Generations:   3,
					Seed:          1,
					OptLevel:      parallel.OptFusedFitness,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6aWeakScaling grows the rank count while holding the SSets per
// rank constant (real goroutine ranks), and evaluates the Blue Gene weak
// scaling model.
func BenchmarkFig6aWeakScaling(b *testing.B) {
	for _, ssetRanks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("real-%dranks", ssetRanks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parallel.Run(parallel.Config{
					Ranks:         ssetRanks + 1,
					NumSSets:      8 * ssetRanks,
					AgentsPerSSet: 4,
					MemorySteps:   1,
					Rounds:        DefaultRounds,
					PCRate:        0.1,
					MutationRate:  0.05,
					Generations:   5,
					Seed:          1,
					OptLevel:      parallel.OptFusedFitness,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PredictWeakScaling(ScalingOptions{}, 4096, 4096, 6,
				[]int{1024, 4096, 16384, 65536, 294912}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6bStrongScaling divides a fixed population across a growing
// rank count (real goroutine ranks), and evaluates the Blue Gene strong
// scaling model.
func BenchmarkFig6bStrongScaling(b *testing.B) {
	for _, ssetRanks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("real-%dranks", ssetRanks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := parallel.Run(parallel.Config{
					Ranks:         ssetRanks + 1,
					NumSSets:      64,
					AgentsPerSSet: 4,
					MemorySteps:   1,
					Rounds:        DefaultRounds,
					PCRate:        0.1,
					MutationRate:  0.05,
					Generations:   3,
					Seed:          1,
					OptLevel:      parallel.OptFusedFitness,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PredictStrongScaling(ScalingOptions{}, 32768, 6,
				[]int{1024, 2048, 8192, 16384, 262144}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalModes compares the shared incremental-fitness subsystem's
// evaluation modes on the serial engine at S in {32, 128, 512} SSets: the
// same noiseless workload is run under full replay, pair-cached and
// incremental evaluation, reporting games per generation as a custom
// metric.  All three modes produce identical dynamics for a given seed.
func BenchmarkEvalModes(b *testing.B) {
	for _, ssets := range []int{32, 128, 512} {
		for _, mode := range []EvalMode{EvalFull, EvalCached, EvalIncremental} {
			b.Run(fmt.Sprintf("%dSSets-%s", ssets, mode), func(b *testing.B) {
				const gens = 50
				var games int64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Simulate(context.Background(), SimulationConfig{
						NumSSets:      ssets,
						AgentsPerSSet: 4,
						MemorySteps:   1,
						Rounds:        DefaultRounds,
						PCRate:        1,
						MutationRate:  0.05,
						Beta:          1,
						Generations:   gens,
						Seed:          uint64(i + 1),
						EvalMode:      mode,
					})
					if err != nil {
						b.Fatal(err)
					}
					games += res.GamesPlayed
				}
				b.ReportMetric(float64(games)/float64(b.N)/gens, "games/gen")
			})
		}
	}
}

// BenchmarkEvalModesParallel runs the distributed engine's per-generation
// all-pairs workload under each evaluation mode at S in {32, 128, 512}
// SSets; this is where the incremental matrix collapses the O(S^2) games
// per generation the paper's implementation replays.
func BenchmarkEvalModesParallel(b *testing.B) {
	for _, ssets := range []int{32, 128, 512} {
		for _, mode := range []EvalMode{EvalFull, EvalCached, EvalIncremental} {
			b.Run(fmt.Sprintf("%dSSets-%s", ssets, mode), func(b *testing.B) {
				const gens = 3
				var games int64
				for i := 0; i < b.N; i++ {
					res, err := SimulateParallel(ParallelConfig{
						Ranks:             5,
						NumSSets:          ssets,
						AgentsPerSSet:     4,
						MemorySteps:       1,
						Rounds:            DefaultRounds,
						PCRate:            0.1,
						MutationRate:      0.05,
						Generations:       gens,
						Seed:              uint64(i + 1),
						OptimizationLevel: 3,
						EvalMode:          mode,
					})
					if err != nil {
						b.Fatal(err)
					}
					games += res.TotalGames
				}
				b.ReportMetric(float64(games)/float64(b.N)/gens, "games/gen")
			})
		}
	}
}

// BenchmarkKernelModesSerial runs the same noiseless full-evaluation
// workload through the facade with the cycle-closing kernel on and off; the
// gap is the closed-form evaluation of the periodic joint-state walk (the
// kernel table of BENCH_5.json measures the same axis on raw all-pairs
// sweeps).
func BenchmarkKernelModesSerial(b *testing.B) {
	for _, kernel := range []string{"full-replay", "auto"} {
		b.Run("kernel-"+kernel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), SimulationConfig{
					NumSSets:      64,
					AgentsPerSSet: 4,
					MemorySteps:   1,
					Rounds:        DefaultRounds,
					PCRate:        1,
					MutationRate:  0.05,
					Beta:          1,
					Generations:   30,
					Seed:          uint64(i + 1),
					Kernel:        kernel,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPairCacheHitPath pins the steady-state cost of the interned pair
// cache: an ID-pair lookup that must stay allocation-free (the companion
// AllocsPerRun gate lives in internal/fitness).
func BenchmarkPairCacheHitPath(b *testing.B) {
	eng, err := game.NewEngine(game.EngineConfig{Rounds: DefaultRounds, MemorySteps: 1,
		StateMode: game.StateRolling, AccumMode: game.AccumLookup})
	if err != nil {
		b.Fatal(err)
	}
	cache, err := fitness.NewPairCache(eng)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]uint32, 16)
	for i, p := range strategy.AllMemoryOne() {
		if ids[i], err = cache.Interner().Intern(p); err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range ids {
		for _, o := range ids {
			if _, err := cache.PlayID(a, o); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.PlayID(ids[i&15], ids[(i>>4)&15]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSSetVsBaseline compares one generation of the SSet-based
// engine against the traditional one-agent-per-strategy baseline on the same
// population (the decomposition the paper argues for in Section IV-A).
func BenchmarkAblationSSetVsBaseline(b *testing.B) {
	const agents = 64
	b.Run("sset-engine", func(b *testing.B) {
		m, err := population.New(population.Config{
			NumSSets:      agents,
			AgentsPerSSet: 1,
			MemorySteps:   1,
			Rounds:        DefaultRounds,
			PCRate:        1,
			MutationRate:  0.05,
			Seed:          1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traditional-baseline", func(b *testing.B) {
		m, err := baseline.New(baseline.Config{
			NumAgents:    agents,
			MemorySteps:  1,
			Rounds:       DefaultRounds,
			PCRate:       1,
			MutationRate: 0.05,
			Seed:         1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
