package evogame

// Equivalence tests for the shared incremental-fitness subsystem: EvalFull,
// EvalCached and EvalIncremental must produce identical results for
// identical seeds in both engines, including when noise forces the cached
// modes onto the full-evaluation bypass path.

import (
	"context"
	"fmt"
	"testing"
)

var allEvalModes = []EvalMode{EvalFull, EvalCached, EvalIncremental}

func TestEvalModeStrings(t *testing.T) {
	names := map[EvalMode]string{EvalFull: "full", EvalCached: "cached", EvalIncremental: "incremental"}
	for mode, want := range names {
		if mode.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), mode.String(), want)
		}
		parsed, err := ParseEvalMode(want)
		if err != nil || parsed != mode {
			t.Errorf("ParseEvalMode(%q) = %v, %v", want, parsed, err)
		}
	}
	if _, err := ParseEvalMode("turbo"); err == nil {
		t.Error("ParseEvalMode accepted an unknown mode")
	}
}

func TestEvalModeRejected(t *testing.T) {
	if _, err := Simulate(context.Background(), SimulationConfig{
		NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, EvalMode: EvalMode(9),
	}); err == nil {
		t.Fatal("Simulate accepted an invalid eval mode")
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 3, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Generations: 1, EvalMode: EvalMode(9),
	}); err == nil {
		t.Fatal("SimulateParallel accepted an invalid eval mode")
	}
}

// TestEvalModeEquivalenceMatrix is the table-driven equivalence check: for
// each scenario (noiseless memory-one, noiseless memory-two with fixed
// initial strategies, and noisy — the cache-bypass path), every eval mode
// must reproduce the EvalFull result bit for bit in both engines.
func TestEvalModeEquivalenceMatrix(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  SimulationConfig
	}{
		{
			name: "noiseless-memory-one",
			cfg: SimulationConfig{
				NumSSets: 14, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 50,
				PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 80, Seed: 101,
				SampleEvery: 20,
			},
		},
		{
			name: "noiseless-memory-two-seeded",
			cfg: SimulationConfig{
				NumSSets: 9, AgentsPerSSet: 3, MemorySteps: 2, Rounds: 40,
				PCRate: 1, MutationRate: 0.2, Beta: 1, Generations: 60, Seed: 17,
				InitialStrategies: func() []string {
					grim, _ := NamedStrategy("grim", 2)
					wsls, _ := NamedStrategy("wsls", 2)
					alld, _ := NamedStrategy("alld", 2)
					return []string{grim, wsls, alld, wsls, grim, wsls, alld, wsls, wsls}
				}(),
			},
		},
		{
			name: "noisy-bypass",
			cfg: SimulationConfig{
				NumSSets: 12, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
				Noise: 0.05, PCRate: 1, MutationRate: 0.2, Beta: 1,
				Generations: 60, Seed: 7,
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Serial engine: all modes against the EvalFull baseline.
			serial := make(map[EvalMode]SimulationResult)
			for _, mode := range allEvalModes {
				cfg := sc.cfg
				cfg.EvalMode = mode
				res, err := Simulate(context.Background(), cfg)
				if err != nil {
					t.Fatalf("serial %v: %v", mode, err)
				}
				serial[mode] = res
			}
			want := serial[EvalFull]
			for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
				got := serial[mode]
				if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
					t.Fatalf("serial %v: final strategies differ from EvalFull", mode)
				}
				if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
					t.Fatalf("serial %v: event counts differ from EvalFull", mode)
				}
				if fmt.Sprint(got.Samples) != fmt.Sprint(want.Samples) {
					t.Fatalf("serial %v: samples differ from EvalFull", mode)
				}
				if sc.cfg.Noise > 0 && got.GamesPlayed != want.GamesPlayed {
					t.Fatalf("serial %v: bypass played %d games, EvalFull %d", mode, got.GamesPlayed, want.GamesPlayed)
				}
			}

			// Distributed engine: all modes must match the serial EvalFull
			// result (noiseless scenarios) and each other (all scenarios).
			parallelBase := ParallelConfig{
				Ranks: 4, OptimizationLevel: 3,
				NumSSets: sc.cfg.NumSSets, AgentsPerSSet: sc.cfg.AgentsPerSSet,
				MemorySteps: sc.cfg.MemorySteps, Rounds: sc.cfg.Rounds,
				Noise: sc.cfg.Noise, PCRate: sc.cfg.PCRate,
				MutationRate: sc.cfg.MutationRate, Beta: sc.cfg.Beta,
				Generations: sc.cfg.Generations, Seed: sc.cfg.Seed,
				InitialStrategies: sc.cfg.InitialStrategies,
			}
			par := make(map[EvalMode]ParallelResult)
			for _, mode := range allEvalModes {
				cfg := parallelBase
				cfg.EvalMode = mode
				res, err := SimulateParallel(cfg)
				if err != nil {
					t.Fatalf("parallel %v: %v", mode, err)
				}
				par[mode] = res
			}
			wantPar := par[EvalFull]
			for _, mode := range []EvalMode{EvalCached, EvalIncremental} {
				got := par[mode]
				if fmt.Sprint(got.FinalStrategies) != fmt.Sprint(wantPar.FinalStrategies) {
					t.Fatalf("parallel %v: final strategies differ from EvalFull", mode)
				}
				if got.PCEvents != wantPar.PCEvents || got.Adoptions != wantPar.Adoptions || got.Mutations != wantPar.Mutations {
					t.Fatalf("parallel %v: event counts differ from EvalFull", mode)
				}
				if sc.cfg.Noise > 0 && got.TotalGames != wantPar.TotalGames {
					t.Fatalf("parallel %v: bypass played %d games, EvalFull %d", mode, got.TotalGames, wantPar.TotalGames)
				}
			}

			// Cross-engine: noiseless dynamics agree between serial and
			// parallel for every mode.
			if sc.cfg.Noise == 0 {
				for _, mode := range allEvalModes {
					if fmt.Sprint(par[mode].FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
						t.Fatalf("%v: serial and parallel engines diverge", mode)
					}
				}
			}
		})
	}
}

// TestIncrementalReducesGamesAtScale is the S=512 acceptance check: under
// EvalIncremental the serial engine must play at least 5x fewer games per
// generation than EvalFull on a noiseless 512-SSet workload, and the
// distributed engine must show at least the same factor.
func TestIncrementalReducesGamesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("512-SSet workload skipped in -short mode")
	}
	base := SimulationConfig{
		NumSSets:      512,
		AgentsPerSSet: 1,
		MemorySteps:   1,
		Rounds:        20,
		PCRate:        1,
		MutationRate:  0.05,
		Beta:          1,
		Generations:   300,
		Seed:          2013,
	}
	games := make(map[EvalMode]int64)
	var baseline SimulationResult
	for _, mode := range allEvalModes {
		cfg := base
		cfg.EvalMode = mode
		res, err := Simulate(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		games[mode] = res.GamesPlayed
		if mode == EvalFull {
			baseline = res
			continue
		}
		if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(baseline.FinalStrategies) {
			t.Fatalf("%v: dynamics differ from EvalFull at S=512", mode)
		}
	}
	perGen := func(mode EvalMode) float64 { return float64(games[mode]) / float64(base.Generations) }
	t.Logf("games/generation: full=%.1f cached=%.1f incremental=%.1f",
		perGen(EvalFull), perGen(EvalCached), perGen(EvalIncremental))
	if games[EvalIncremental] == 0 {
		t.Fatal("incremental mode played no games")
	}
	if ratio := float64(games[EvalFull]) / float64(games[EvalIncremental]); ratio < 5 {
		t.Fatalf("EvalIncremental reduced games by only %.2fx (full %d, incremental %d), want >= 5x",
			ratio, games[EvalFull], games[EvalIncremental])
	}

	parBase := ParallelConfig{
		Ranks: 5, OptimizationLevel: 3,
		NumSSets: 512, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 5,
		PCRate: 1, MutationRate: 0.05, Beta: 1, Generations: 40, Seed: 2013,
	}
	parGames := make(map[EvalMode]int64)
	var parBaseline ParallelResult
	for _, mode := range allEvalModes {
		cfg := parBase
		cfg.EvalMode = mode
		res, err := SimulateParallel(cfg)
		if err != nil {
			t.Fatalf("parallel %v: %v", mode, err)
		}
		parGames[mode] = res.TotalGames
		if mode == EvalFull {
			parBaseline = res
			continue
		}
		if fmt.Sprint(res.FinalStrategies) != fmt.Sprint(parBaseline.FinalStrategies) {
			t.Fatalf("parallel %v: dynamics differ from EvalFull at S=512", mode)
		}
	}
	if ratio := float64(parGames[EvalFull]) / float64(parGames[EvalIncremental]); ratio < 5 {
		t.Fatalf("parallel EvalIncremental reduced games by only %.2fx (full %d, incremental %d), want >= 5x",
			ratio, parGames[EvalFull], parGames[EvalIncremental])
	}
}
