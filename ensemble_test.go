package evogame

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// TestMetricsMergeCounters pins the facade Metrics.Merge semantics: counters
// sum, Generations takes the maximum (ranks of one run advance in lockstep).
func TestMetricsMergeCounters(t *testing.T) {
	a := Metrics{
		Generations: 10, CachePlays: 5, CacheHits: 7, CacheMisses: 5, CacheBypassed: 1,
		CacheEvicted: 2, ScalarGames: 3, CycleGames: 4, BatchGames: 64, BatchCalls: 1,
		PCEvents: 6, Adoptions: 2, Mutations: 1,
	}
	b := Metrics{
		Generations: 8, CachePlays: 2, CacheHits: 1, CacheMisses: 2, CacheBypassed: 3,
		CacheEvicted: 0, ScalarGames: 1, CycleGames: 1, BatchGames: 32, BatchCalls: 1,
		PCEvents: 4, Adoptions: 3, Mutations: 2,
	}
	m := a
	m.Merge(b)
	if m.Generations != 10 {
		t.Errorf("Generations = %d, want the maximum 10", m.Generations)
	}
	if m.CachePlays != 7 || m.CacheHits != 8 || m.CacheMisses != 7 || m.CacheBypassed != 4 || m.CacheEvicted != 2 {
		t.Errorf("cache counters did not sum: %+v", m)
	}
	if m.ScalarGames != 4 || m.CycleGames != 5 || m.BatchGames != 96 || m.BatchCalls != 2 {
		t.Errorf("kernel counters did not sum: %+v", m)
	}
	if m.PCEvents != 10 || m.Adoptions != 5 || m.Mutations != 3 {
		t.Errorf("event counters did not sum: %+v", m)
	}
}

// TestMetricsMergeOccupancyWeighting pins that batch-lane occupancy after a
// merge is weighted by batch calls, not a naive mean of the two rates: a
// full 2-call run (occupancy 1.0) merged with a quarter-full 1-call run
// (occupancy 0.25) occupies 144 of 3*64 lanes = 0.75, where the naive mean
// would claim 0.625.
func TestMetricsMergeOccupancyWeighting(t *testing.T) {
	a := Metrics{BatchGames: 128, BatchCalls: 2}
	b := Metrics{BatchGames: 16, BatchCalls: 1}
	naive := (a.BatchLaneOccupancy() + b.BatchLaneOccupancy()) / 2
	a.Merge(b)
	if got := a.BatchLaneOccupancy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("merged occupancy = %v, want 0.75 (call-weighted)", got)
	}
	if math.Abs(naive-0.625) > 1e-12 {
		t.Fatalf("test workload drifted: naive mean = %v, want 0.625", naive)
	}
}

// TestRunEnsembleSerialFacade runs a small serial ensemble end to end
// through the facade and checks the per-replicate results are exactly the
// solo Simulate runs of the derived seeds, with sane aggregates.
func TestRunEnsembleSerialFacade(t *testing.T) {
	sim := SimulationConfig{
		NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 20,
		PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 40, Seed: 41,
		SampleEvery: 10, EvalMode: EvalCached,
	}
	res, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 3, EnsembleWorkers: 2, Simulation: &sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Serial) != 3 || len(res.Seeds) != 3 || res.Parallel != nil {
		t.Fatalf("serial ensemble shape: %d serial, %d seeds, parallel=%v", len(res.Serial), len(res.Seeds), res.Parallel != nil)
	}
	if res.Seeds[0] != sim.Seed {
		t.Fatalf("replicate 0 ran seed %d, want the base seed %d", res.Seeds[0], sim.Seed)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("no aggregate trajectory for a sampled serial ensemble")
	}
	var events int
	for k, r := range res.Serial {
		solo := sim
		solo.Seed = res.Seeds[k]
		want, err := Simulate(context.Background(), solo)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(r.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("replicate %d differs from solo Simulate of seed %d", k, res.Seeds[k])
		}
		events += r.PCEvents
	}
	if res.Metrics.PCEvents != events {
		t.Fatalf("merged PCEvents = %d, want the replicate sum %d", res.Metrics.PCEvents, events)
	}
	last := res.Trajectory[len(res.Trajectory)-1]
	if last.CooperationMean < 0 || last.CooperationMean > 1 || last.CooperationStd < 0 {
		t.Fatalf("implausible aggregate point: %+v", last)
	}
}

// TestRunEnsembleParallelFacade mirrors the serial facade test for the
// distributed engine.
func TestRunEnsembleParallelFacade(t *testing.T) {
	par := ParallelConfig{
		Ranks: 3, OptimizationLevel: 3, NumSSets: 12, AgentsPerSSet: 2,
		MemorySteps: 1, Rounds: 20, PCRate: 1, MutationRate: 0.25, Beta: 1,
		Generations: 30, Seed: 41, EvalMode: EvalCached,
	}
	res, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 2, Parallel: &par,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parallel) != 2 || res.Serial != nil {
		t.Fatalf("parallel ensemble shape: %d parallel, serial=%v", len(res.Parallel), res.Serial != nil)
	}
	for k, r := range res.Parallel {
		solo := par
		solo.Seed = res.Seeds[k]
		want, err := SimulateParallel(solo)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(r.FinalStrategies) != fmt.Sprint(want.FinalStrategies) {
			t.Fatalf("replicate %d differs from solo SimulateParallel of seed %d", k, res.Seeds[k])
		}
	}
}

// TestRunEnsembleValidation covers the facade-level error paths.
func TestRunEnsembleValidation(t *testing.T) {
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{Replicates: 2}); err == nil {
		t.Fatal("ensemble with no engine config accepted")
	}
	sim := SimulationConfig{NumSSets: 8, AgentsPerSSet: 2, MemorySteps: 1, Generations: 2}
	par := ParallelConfig{Ranks: 3, NumSSets: 8, AgentsPerSSet: 2, MemorySteps: 1, Generations: 2}
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 2, Simulation: &sim, Parallel: &par,
	}); err == nil {
		t.Fatal("ensemble with both engine configs accepted")
	}
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 2, EnsembleWorkers: -1, Simulation: &sim,
	}); err == nil {
		t.Fatal("negative EnsembleWorkers accepted")
	}
	ckpt := sim
	ckpt.CheckpointPath = t.TempDir() + "/c.ckpt"
	if _, err := RunEnsemble(context.Background(), EnsembleConfig{
		Replicates: 2, Simulation: &ckpt,
	}); err == nil {
		t.Fatal("checkpointing inside an ensemble accepted")
	}
}
