package evogame

import (
	"fmt"

	"evogame/internal/cluster"
	"evogame/internal/perfmodel"
	"evogame/internal/strategy"
)

// MachineName identifies a modelled target machine for scaling predictions.
type MachineName string

// The machines the paper's experiments ran on.
const (
	MachineBlueGeneP MachineName = "bluegene/p"
	MachineBlueGeneQ MachineName = "bluegene/q"
)

func machineByName(name MachineName) (cluster.Machine, error) {
	switch name {
	case MachineBlueGeneP, "":
		return cluster.BlueGeneP(), nil
	case MachineBlueGeneQ:
		return cluster.BlueGeneQ(), nil
	default:
		return cluster.Machine{}, fmt.Errorf("evogame: unknown machine %q (use %q or %q)",
			name, MachineBlueGeneP, MachineBlueGeneQ)
	}
}

// ScalingOptions configures the analytic scaling predictions.
type ScalingOptions struct {
	// Machine selects the modelled system; the default is Blue Gene/P.
	Machine MachineName
	// CalibrateKernel, when true, measures the real per-round game cost on
	// the host before predicting; otherwise representative defaults are
	// used, which keeps predictions deterministic.
	CalibrateKernel bool
	// CalibrationGames is the number of games timed per memory depth when
	// CalibrateKernel is set (default 50).
	CalibrationGames int
}

func (o ScalingOptions) model() (*perfmodel.Model, error) {
	machine, err := machineByName(o.Machine)
	if err != nil {
		return nil, err
	}
	cal := perfmodel.DefaultCalibration()
	if o.CalibrateKernel {
		games := o.CalibrationGames
		if games <= 0 {
			games = 50
		}
		cal, err = perfmodel.Calibrate(games)
		if err != nil {
			return nil, err
		}
	}
	return perfmodel.NewModel(machine, cal), nil
}

// ScalingPoint is one point of a predicted scaling curve.
type ScalingPoint struct {
	Processors           int
	SecondsPerGeneration float64
	ComputeSeconds       float64
	CommSeconds          float64
	Speedup              float64
	EfficiencyPercent    float64
}

func convertPoints(in []perfmodel.ScalingPoint) []ScalingPoint {
	out := make([]ScalingPoint, len(in))
	for i, p := range in {
		out[i] = ScalingPoint{
			Processors:           p.Processors,
			SecondsPerGeneration: p.SecondsPerGeneration,
			ComputeSeconds:       p.ComputeSeconds,
			CommSeconds:          p.CommSeconds,
			Speedup:              p.Speedup,
			EfficiencyPercent:    p.Efficiency,
		}
	}
	return out
}

// PredictStrongScaling predicts the strong-scaling curve (Figure 6b /
// Figure 4 of the paper) for a fixed population of totalSSets memory-n
// strategies over the given processor counts; the first count is the
// baseline.
func PredictStrongScaling(opts ScalingOptions, totalSSets, memSteps int, processors []int) ([]ScalingPoint, error) {
	m, err := opts.model()
	if err != nil {
		return nil, err
	}
	points, err := m.StrongScaling(totalSSets, memSteps, processors)
	if err != nil {
		return nil, err
	}
	return convertPoints(points), nil
}

// PredictWeakScaling predicts the weak-scaling curve (Figure 6a): every
// processor hosts ssetsPerProc SSets, each playing opponentsPerSSet games
// per generation.
func PredictWeakScaling(opts ScalingOptions, ssetsPerProc, opponentsPerSSet, memSteps int, processors []int) ([]ScalingPoint, error) {
	m, err := opts.model()
	if err != nil {
		return nil, err
	}
	points, err := m.WeakScaling(ssetsPerProc, opponentsPerSSet, memSteps, processors)
	if err != nil {
		return nil, err
	}
	return convertPoints(points), nil
}

// RatioPoint is one row of the SSets-per-processor efficiency table
// (Table VI).
type RatioPoint struct {
	Ratio             float64
	EfficiencyPercent float64
}

// RatioTable predicts parallel efficiency as a function of the
// SSet-to-processor ratio (Table VI).
func RatioTable(opts ScalingOptions, ratios []float64, opponentsPerSSet, memSteps, processors int) ([]RatioPoint, error) {
	m, err := opts.model()
	if err != nil {
		return nil, err
	}
	points, err := m.RatioTable(ratios, opponentsPerSSet, memSteps, processors)
	if err != nil {
		return nil, err
	}
	out := make([]RatioPoint, len(points))
	for i, p := range points {
		out[i] = RatioPoint{Ratio: p.Ratio, EfficiencyPercent: p.Efficiency}
	}
	return out, nil
}

// MemorySweepPoint is one bar of the memory-step runtime breakdown
// (Figure 5).
type MemorySweepPoint struct {
	MemorySteps    int
	ComputeSeconds float64
	CommSeconds    float64
}

// MemorySweep predicts the compute/communication breakdown of a fixed
// workload (totalSSets SSets for the given number of generations on the
// given processor count) for memory depths one through six.
func MemorySweep(opts ScalingOptions, totalSSets, generations, processors int) ([]MemorySweepPoint, error) {
	m, err := opts.model()
	if err != nil {
		return nil, err
	}
	points, err := m.MemorySweep(totalSSets, generations, processors)
	if err != nil {
		return nil, err
	}
	out := make([]MemorySweepPoint, len(points))
	for i, p := range points {
		out[i] = MemorySweepPoint{MemorySteps: p.MemorySteps, ComputeSeconds: p.ComputeSeconds, CommSeconds: p.CommSeconds}
	}
	return out, nil
}

// MemoryCapacity describes whether a population fits on the modelled
// machine and how deep its strategies may be.
type MemoryCapacity struct {
	Machine          MachineName
	MaxMemorySteps   int
	MaxTotalSSets    int
	FootprintBytes   int64
	FitsAtMemorySix  bool
	TasksPerNodeUsed int
}

// CheckMemoryCapacity reproduces the paper's memory-capacity argument: it
// reports the largest memory depth and population that fit on the machine
// when totalSSets Strategy Sets are divided across the given number of
// processors.
func CheckMemoryCapacity(name MachineName, totalSSets, processors int) (MemoryCapacity, error) {
	machine, err := machineByName(name)
	if err != nil {
		return MemoryCapacity{}, err
	}
	if processors < 1 || totalSSets < 1 {
		return MemoryCapacity{}, fmt.Errorf("evogame: processors and SSets must be positive")
	}
	tasksPerNode := machine.CoresPerNode
	if name == MachineBlueGeneQ {
		tasksPerNode = 32
	}
	local := (totalSSets + processors - 1) / processors
	return MemoryCapacity{
		Machine:          name,
		MaxMemorySteps:   machine.MaxMemorySteps(local, totalSSets, tasksPerNode),
		MaxTotalSSets:    machine.MaxTotalSSets(processors, MaxMemorySteps, tasksPerNode),
		FootprintBytes:   cluster.MemoryFootprint(local, totalSSets, MaxMemorySteps),
		FitsAtMemorySix:  machine.FitsInMemory(local, totalSSets, MaxMemorySteps, tasksPerNode),
		TasksPerNodeUsed: tasksPerNode,
	}, nil
}

// StrategyBytes returns the packed size in bytes of one pure strategy of the
// given memory depth (512 bytes for memory-six).
func StrategyBytes(memSteps int) (int, error) {
	if memSteps < 1 || memSteps > MaxMemorySteps {
		return 0, fmt.Errorf("evogame: memory steps %d out of range [1,%d]", memSteps, MaxMemorySteps)
	}
	return strategy.StrategyBytes(memSteps), nil
}
