package evogame

// Markdown link checker, enforced in CI as part of the regular test run
// (and as a named step): every relative link in the repository's markdown
// files — README.md, the docs/ tree and the example READMEs — must point
// at a file or directory that exists, so the documentation tree cannot rot
// silently as the code moves.  External (http/https/mailto) links are not
// fetched; this lint is about intra-repository integrity.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles returns every tracked markdown file the lint covers.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip hidden trees (.git, .github holds no markdown we publish).
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — the link checker is miswired")
	}
	return files
}

// inlineLink matches [text](target) including image links; target may
// carry an optional title, which is stripped below.
var inlineLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func TestMarkdownLinks(t *testing.T) {
	checked := 0
	for _, file := range markdownFiles(t) {
		content, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, match := range inlineLink.FindAllStringSubmatch(string(content), -1) {
			target := match[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not this lint's business
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			// Strip an anchor suffix from a file link (docs/FOO.md#section).
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved to %s)", file, match[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked — the docs tree should contain at least the README <-> docs/ cross-links")
	}
}
