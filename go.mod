module evogame

go 1.21
