package evogame

// Documentation lints, enforced in CI as part of the regular test run (and
// as a named step): every internal package must carry a package-level doc
// comment, and every exported symbol of the facade (evogame.go) must carry
// a doc comment.  This is the exported-comment discipline of revive/golint
// implemented over go/ast so it needs no external tooling.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackageDocs requires a package-level doc comment on every
// package under internal/.
func TestInternalPackageDocs(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("internal", e.Name())
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (in %s) has no package-level doc comment", name, dir)
			}
		}
	}
}

// TestFacadeExportedDocs requires a doc comment on every exported symbol
// declared in evogame.go: functions, methods, types, and the individual
// specs of const/var/type groups (a spec inside a documented group is
// fine).
func TestFacadeExportedDocs(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "evogame.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	report := func(pos token.Pos, symbol string) {
		t.Errorf("%s: exported symbol %s has no doc comment", fset.Position(pos), symbol)
	}
	hasDoc := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g != nil && strings.TrimSpace(g.Text()) != "" {
				return true
			}
		}
		return false
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			if !hasDoc(d.Doc) {
				report(d.Pos(), describeFunc(d))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !hasDoc(s.Doc, d.Doc) {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && !hasDoc(s.Doc, s.Comment, d.Doc) {
							report(name.Pos(), name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func describeFunc(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return fmt.Sprintf("method %s", d.Name.Name)
}
