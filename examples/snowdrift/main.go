// Snowdrift equilibrium: the same population dynamics as the paper's IPD
// validation, played on the Snowdrift (Hawk-Dove) scenario from the game
// registry.  In the Prisoner's Dilemma cooperating against a defector earns
// the worst payoff (S < P), so post-defection cooperation is bred out of
// the population; in Snowdrift the ordering T > R > S > P makes yielding to
// a defector the best reply, so cooperative play survives at equilibrium —
// a non-PD equilibrium the hardwired engines could not express.
//
// The example evolves the same seeded populations under three payoff
// regimes — the PD baseline, the canonical snowdrift matrix (benefit b=4,
// cost c=2) and a high-cost snowdrift (c=3, cost-to-benefit ratio 0.6) —
// and reports how often the evolved strategies cooperate right after the
// opponent defected, averaged over a few independent seeds.
//
//	go run ./examples/snowdrift
//	go run ./examples/snowdrift -ssets 128 -generations 40000 -seeds 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"evogame"
)

func main() {
	ssetsFlag := flag.Int("ssets", 96, "number of Strategy Sets")
	gensFlag := flag.Int("generations", 20000, "generations to simulate per run")
	seedsFlag := flag.Int("seeds", 3, "independent seeds to average per scenario")
	flag.Parse()

	scenarios := []struct {
		label  string
		game   string
		payoff []float64
	}{
		{"ipd (paper baseline)", "ipd", nil},
		{"snowdrift b=4 c=2", "snowdrift", nil},
		{"snowdrift b=4 c=3", "snowdrift", []float64{2.5, 1, 4, 0}}, // R=b-c/2, S=b-c, T=b, P=0
	}

	fmt.Printf("evolving %d SSets of memory-one strategies, %d generations x %d seeds per scenario...\n\n",
		*ssetsFlag, *gensFlag, *seedsFlag)
	fmt.Printf("%-22s  %-18s  %s\n", "scenario", "payoff [R,S,T,P]", "yields to defector (mean over seeds)")
	for _, sc := range scenarios {
		//lint:allow randsource wall-clock elapsed time for the per-scenario progress line; never feeds simulation state
		start := time.Now()
		meanYield, games := 0.0, int64(0)
		for seed := 0; seed < *seedsFlag; seed++ {
			res, err := evogame.Simulate(context.Background(), evogame.SimulationConfig{
				NumSSets:      *ssetsFlag,
				AgentsPerSSet: 4,
				MemorySteps:   1,
				Rounds:        evogame.DefaultRounds,
				PCRate:        1.0,
				MutationRate:  0.05,
				Beta:          1.0,
				Generations:   *gensFlag,
				Seed:          2004 + uint64(seed), // 2004: Hauert & Doebeli's snowdrift study
				EvalMode:      evogame.EvalIncremental,
				Game:          sc.game,
				Payoff:        sc.payoff,
			})
			if err != nil {
				log.Fatal(err)
			}
			meanYield += yieldRate(res.FinalStrategies)
			games += res.GamesPlayed
		}
		meanYield /= float64(*seedsFlag)

		info, err := evogame.DescribeGame(sc.game)
		if err != nil {
			log.Fatal(err)
		}
		payoff := info.Payoff
		if sc.payoff != nil {
			copy(payoff[:], sc.payoff)
		}
		fmt.Printf("%-22s  %-18s  %5.1f%%   (%.1fs, %d games)\n",
			sc.label, fmt.Sprintf("%v", payoff), 100*meanYield, time.Since(start).Seconds(), games)
	}
	fmt.Println("\n\"yields to defector\" is the fraction of post-defection states (opponent played D")
	fmt.Println("last round) in which the evolved strategies cooperate anyway.  The PD breeds that")
	fmt.Println("move out (it earns the sucker's payoff S=0); snowdrift's S > P keeps it at high")
	fmt.Println("frequency at the canonical cost and alive — intermittently, as Hauert & Doebeli")
	fmt.Println("observed — even at a 0.6 cost-to-benefit ratio.")
}

// yieldRate returns the fraction of post-defection states in which the
// population's strategies cooperate: over every SSet's memory-one move
// table, the states whose low bit is 1 (the opponent defected last round)
// and whose prescribed move is '0' (cooperate).
func yieldRate(finalStrategies []string) float64 {
	states, cooperations := 0, 0
	for _, moves := range finalStrategies {
		for s := 0; s < len(moves); s++ {
			if s&1 == 1 { // opponent's previous move was D
				states++
				if moves[s] == '0' {
					cooperations++
				}
			}
		}
	}
	if states == 0 {
		return 0
	}
	return float64(cooperations) / float64(states)
}
