// Lattice cooperation: network reciprocity on a torus versus the
// well-mixed baseline.
//
// In a well-mixed Prisoner's Dilemma population every cooperator is
// exploitable by every defector, so defection-heavy strategies dominate.
// On a sparse lattice an SSet only plays its graph neighbors; a patch of
// mutual cooperators earns the reward payoff on every internal edge while
// defectors on the patch boundary exploit at most a few cooperators each,
// and learning events copy strategies only along edges — so cooperative
// strategies spread locally and survive as spatial clusters (Nowak & May's
// network reciprocity).  The example quantifies both effects:
//
//   - cooperativity: the mean fraction of strategy-table states that
//     prescribe cooperation in the final population;
//   - assortment: the fraction of graph edges whose endpoints hold the
//     same strategy, against the expectation for a randomly shuffled
//     placement of the same strategy counts.  A ratio above 1 means like
//     strategies sit next to each other — spatial clustering the
//     well-mixed population cannot express.
//
// Runs are averaged over independent seeds.
//
//	go run ./examples/lattice_cooperation
//	go run ./examples/lattice_cooperation -ssets 400 -generations 40000 -seeds 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"evogame"

	"evogame/internal/stats"
)

func main() {
	ssets := flag.Int("ssets", 144, "number of Strategy Sets (a near-square count makes a square torus)")
	generations := flag.Int("generations", 20000, "generations per run")
	seeds := flag.Int("seeds", 3, "independent seeds to average over")
	flag.Parse()

	if err := run(*ssets, *generations, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "lattice_cooperation:", err)
		os.Exit(1)
	}
}

// runResult aggregates one topology's metrics over the seed sweep.
type runResult struct {
	coop       float64 // mean fraction of cooperating strategy states
	assortment float64 // observed same-strategy edge fraction
	expected   float64 // same-strategy edge fraction under random placement
}

func run(ssets, generations, seeds int) error {
	fmt.Printf("IPD + Fermi, %d SSets x 4 agents, memory-one, noiseless, %d generations, %d seeds\n\n",
		ssets, generations, seeds)

	topologies := []string{"wellmixed", "torus:vonneumann", "torus:moore"}
	t := stats.NewTable("Topology", "Cooperating states %", "Same-strategy edges %", "Random expectation %", "Clustering ratio")
	for _, topo := range topologies {
		agg := runResult{}
		for seed := 0; seed < seeds; seed++ {
			r, err := oneRun(topo, ssets, generations, uint64(1000+seed))
			if err != nil {
				return err
			}
			agg.coop += r.coop
			agg.assortment += r.assortment
			agg.expected += r.expected
		}
		n := float64(seeds)
		ratio := 0.0
		if agg.expected > 0 {
			ratio = agg.assortment / agg.expected
		}
		t.AddRow(topo,
			fmt.Sprintf("%.1f", 100*agg.coop/n),
			fmt.Sprintf("%.1f", 100*agg.assortment/n),
			fmt.Sprintf("%.1f", 100*agg.expected/n),
			fmt.Sprintf("%.2f", ratio))
	}
	fmt.Print(t.String())
	fmt.Println("\nnetwork reciprocity: on the torus, cooperative strategies survive by clustering —")
	fmt.Println("the same-strategy edge fraction exceeds the random-placement expectation, and the")
	fmt.Println("population keeps more cooperating states than the well-mixed baseline, where any")
	fmt.Println("cooperator is exposed to every defector and clustering is undefined (every placement")
	fmt.Println("is adjacent to every other, so the ratio stays near 1)")
	return nil
}

func oneRun(topo string, ssets, generations int, seed uint64) (runResult, error) {
	res, err := evogame.Simulate(context.Background(), evogame.SimulationConfig{
		NumSSets:      ssets,
		AgentsPerSSet: 4,
		MemorySteps:   1,
		Rounds:        evogame.DefaultRounds,
		PCRate:        1,
		MutationRate:  0.05,
		Beta:          1,
		Generations:   generations,
		Seed:          seed,
		EvalMode:      evogame.EvalIncremental,
		Topology:      topo,
	})
	if err != nil {
		return runResult{}, fmt.Errorf("topology %s seed %d: %w", topo, seed, err)
	}
	last := res.Samples[len(res.Samples)-1]
	out := runResult{coop: 1 - last.MeanDefectingStates}

	// Relate the final strategy table to the interaction structure: the
	// neighbor lists below are exactly the graph the run evolved on
	// (same topology string, SSet count and seed).
	neigh, err := evogame.TopologyNeighbors(topo, ssets, seed)
	if err != nil {
		return runResult{}, err
	}
	same, edges := 0, 0
	for i, row := range neigh {
		for _, j := range row {
			if j <= i {
				continue // count each undirected edge once
			}
			edges++
			if res.FinalStrategies[i] == res.FinalStrategies[j] {
				same++
			}
		}
	}
	if edges > 0 {
		out.assortment = float64(same) / float64(edges)
	}
	// Expected same-strategy edge fraction if the same multiset of
	// strategies were placed on the nodes uniformly at random: the
	// probability that two distinct nodes hold equal strategies.
	counts := make(map[string]int)
	for _, s := range res.FinalStrategies {
		counts[s]++
	}
	pairsSame, pairsTotal := 0, ssets*(ssets-1)/2
	for _, c := range counts {
		pairsSame += c * (c - 1) / 2
	}
	if pairsTotal > 0 {
		out.expected = float64(pairsSame) / float64(pairsTotal)
	}
	return out, nil
}
