// Axelrod tournament: the round-robin setting that motivates the paper's
// Section III-B, where Tit-For-Tat repeatedly emerged as the winner of
// Axelrod's computer tournaments.  This example runs the classic field
// twice — without and with execution errors — and shows the well-known
// reversal the paper's validation study builds on: TFT (and Grim) top the
// noiseless tournament, while Win-Stay Lose-Shift overtakes TFT once moves
// can misfire.  The exact-payoff toolkit explains why.
//
//	go run ./examples/axelrod_tournament
package main

import (
	"fmt"
	"log"
	"sort"

	"evogame"
)

func main() {
	entrants, err := evogame.ClassicTournamentEntrants(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entrants (memory-one move tables):")
	names := make([]string, 0, len(entrants))
	for name := range entrants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		table := entrants[name]
		traits, err := evogame.ClassifyStrategy(table, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %s  nice=%-5v retaliatory=%-5v forgiving=%-5v\n",
			name, table, traits.Nice, traits.Retaliatory, traits.Forgiving)
	}

	for _, noise := range []float64{0, 0.03} {
		fmt.Printf("\n== round robin, 200 rounds, 5 repetitions, noise %.2f ==\n", noise)
		standings, err := evogame.RunTournament(entrants, evogame.TournamentConfig{
			Rounds:          200,
			Repetitions:     5,
			Noise:           noise,
			IncludeSelfPlay: true,
			Seed:            1984,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("rank  entrant  total score  mean/game  wins  draws")
		for i, s := range standings {
			fmt.Printf("%4d  %-7s  %11.1f  %9.2f  %4d  %5d\n",
				i+1, s.Name, s.TotalScore, s.MeanPerGame, s.Wins, s.Draws)
		}
	}

	// The exact-payoff toolkit explains the reversal: under errors, mutual
	// WSLS play recovers cooperation while mutual TFT play falls into
	// alternating retaliation.
	wsls := entrants["WSLS"]
	tft := entrants["TFT"]
	ww, _, err := evogame.ExactPayoffs(wsls, wsls, 1, 200, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	tt, _, err := evogame.ExactPayoffs(tft, tft, 1, 200, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact self-play payoff at 3%% noise: WSLS %.0f vs TFT %.0f (mutual cooperation would be 600)\n", ww, tt)
	fmt.Println("WSLS recovers from an error in two rounds; TFT echoes it forever — the effect behind Figure 2")
}
