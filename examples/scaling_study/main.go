// Scaling study: reproduces the shape of the paper's Figure 6 and Table VI.
// Real strong and weak scaling are measured with goroutine ranks on the
// local host, and the analytic performance model extrapolates the same
// algorithm to Blue Gene/P (294,912 cores) and Blue Gene/Q (16,384 tasks).
// Each point here is a single timed run; to average scaling points over
// replicates the way the paper's figures do, run them through the ensemble
// tier (evogame.RunEnsemble, or `evogame -replicates N`) as
// examples/memory_sweep now does.
//
//	go run ./examples/scaling_study
//	go run ./examples/scaling_study -calibrate   # measure the game kernel first
package main

import (
	"flag"
	"fmt"
	"log"

	"evogame"
)

func main() {
	calibrate := flag.Bool("calibrate", false, "measure the real game-kernel cost before modelling")
	flag.Parse()
	opts := evogame.ScalingOptions{CalibrateKernel: *calibrate}

	// Real strong scaling on this host: a fixed 64-SSet population spread
	// over an increasing number of goroutine ranks.
	fmt.Println("== real strong scaling (64 SSets, memory-one, 10 generations, goroutine ranks) ==")
	fmt.Println("ranks   wallclock(s)   efficiency(%)")
	var base float64
	for i, ranks := range []int{1, 2, 4, 8} {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks: ranks + 1, NumSSets: 64, AgentsPerSSet: 4, MemorySteps: 1,
			Rounds: evogame.DefaultRounds, PCRate: 0.1, MutationRate: 0.05,
			Generations: 10, Seed: 7, OptimizationLevel: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.WallClockSeconds
		}
		eff := 100 * base / (res.WallClockSeconds * float64(ranks))
		fmt.Printf("%5d   %12.3f   %12.1f\n", ranks, res.WallClockSeconds, eff)
	}

	// Model: the paper's strong scaling run (Figure 6b).
	fmt.Println("\n== modelled strong scaling on Blue Gene/P: 32,768 SSets, memory-six (Figure 6b) ==")
	points, err := evogame.PredictStrongScaling(opts, 32768, 6, []int{1024, 2048, 8192, 16384, 262144})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processors   sec/generation   speedup   efficiency(%)")
	for _, p := range points {
		fmt.Printf("%10d   %14.4f   %7.0f   %13.1f\n",
			p.Processors, p.SecondsPerGeneration, p.Speedup, p.EfficiencyPercent)
	}
	fmt.Println("paper: 99% linear scaling through 16,384 processors, 82% at 262,144")

	// Model: the paper's weak scaling run (Figure 6a).
	fmt.Println("\n== modelled weak scaling: 4,096 SSets per processor, memory-six (Figure 6a) ==")
	weakP, err := evogame.PredictWeakScaling(opts, 4096, 4096, 6, []int{1024, 4096, 16384, 65536, 294912})
	if err != nil {
		log.Fatal(err)
	}
	optsQ := opts
	optsQ.Machine = evogame.MachineBlueGeneQ
	weakQ, err := evogame.PredictWeakScaling(optsQ, 4096, 4096, 6, []int{1024, 4096, 16384})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine   processors   sec/generation   efficiency(%)")
	for _, p := range weakP {
		fmt.Printf("BG/P      %10d   %14.3f   %13.2f\n", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	for _, p := range weakQ {
		fmt.Printf("BG/Q      %10d   %14.3f   %13.2f\n", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	fmt.Println("paper: >=99% weak scaling efficiency at every measured scale")

	// Model: the SSets-per-processor ratio cliff (Table VI).
	fmt.Println("\n== modelled SSets-per-processor ratio (Table VI) ==")
	rows, err := evogame.RatioTable(opts, []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8}, 2048, 6, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("R (SSets/proc)   efficiency(%)")
	for _, r := range rows {
		fmt.Printf("%14.1f   %13.1f\n", r.Ratio, r.EfficiencyPercent)
	}
	fmt.Println("paper: 50/55% at R<=1, >=99.7% once each processor holds at least two SSets")

	// Memory capacity: reproduce the "memory-six is the limit" argument.
	fmt.Println("\n== memory capacity (Section V-C) ==")
	capacity, err := evogame.CheckMemoryCapacity(evogame.MachineBlueGeneP, 32768, 1024)
	if err != nil {
		log.Fatal(err)
	}
	stratBytes, _ := evogame.StrategyBytes(6)
	fmt.Printf("a memory-six strategy occupies %d bytes; on 1,024 Blue Gene/P processors the largest\n", stratBytes)
	fmt.Printf("population that fits is %d SSets and the deepest memory that fits is memory-%d\n",
		capacity.MaxTotalSSets, capacity.MaxMemorySteps)
}
