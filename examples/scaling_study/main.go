// Scaling study: reproduces the shape of the paper's Figure 6 and Table VI.
// The real strong-scaling grid comes from the paperkit artifact registry
// (internal/artifact), so this example times exactly the runs whose
// rank-count independence is pinned under artifacts/tables/; the analytic
// performance model then extrapolates the same algorithm to Blue Gene/P
// (294,912 cores) and Blue Gene/Q (16,384 tasks).
//
//	go run ./examples/scaling_study
//	go run ./examples/scaling_study -quick       # time the committed grid
//	go run ./examples/scaling_study -calibrate   # measure the game kernel first
package main

import (
	"flag"
	"fmt"
	"log"

	"evogame"
	"evogame/internal/artifact"
	"evogame/internal/ensemble"
	"evogame/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "time the small committed grid instead of the full one")
	calibrate := flag.Bool("calibrate", false, "measure the real game-kernel cost before modelling")
	flag.Parse()
	opts := evogame.ScalingOptions{CalibrateKernel: *calibrate}

	// Real strong scaling on this host: the registry grid runs each
	// population size at several rank counts; efficiency is relative to the
	// smallest rank count of the same population size.
	study, err := artifact.Lookup("scaling_study")
	if err != nil {
		log.Fatal(err)
	}
	cells := study.Grid(*quick)
	fmt.Printf("== real strong scaling (registry artifact %q, %s grid, goroutine ranks) ==\n",
		study.Name, artifact.GridName(*quick))
	fmt.Println("cell             ranks   wallclock(s)   efficiency(%)")
	base := map[int]float64{} // population size -> base ranks×seconds
	for _, cell := range cells {
		res, err := ensemble.RunParallel(*cell.Parallel, ensemble.Config{Replicates: cell.Replicates})
		if err != nil {
			log.Fatal(err)
		}
		var wall stats.Welford
		for _, r := range res.Runs {
			wall.Add(r.WallClock.Seconds())
		}
		ssetRanks := cell.Parallel.Ranks - 1 // rank 0 is the Nature Agent
		work := wall.Mean() * float64(ssetRanks)
		if _, ok := base[cell.Parallel.NumSSets]; !ok {
			base[cell.Parallel.NumSSets] = work
		}
		eff := 100 * base[cell.Parallel.NumSSets] / work
		fmt.Printf("%-15s  %5d   %12.3f   %12.1f\n", cell.Key, ssetRanks, wall.Mean(), eff)
	}

	// Model: the paper's strong scaling run (Figure 6b).
	fmt.Println("\n== modelled strong scaling on Blue Gene/P: 32,768 SSets, memory-six (Figure 6b) ==")
	points, err := evogame.PredictStrongScaling(opts, 32768, 6, []int{1024, 2048, 8192, 16384, 262144})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("processors   sec/generation   speedup   efficiency(%)")
	for _, p := range points {
		fmt.Printf("%10d   %14.4f   %7.0f   %13.1f\n",
			p.Processors, p.SecondsPerGeneration, p.Speedup, p.EfficiencyPercent)
	}
	fmt.Println("paper: 99% linear scaling through 16,384 processors, 82% at 262,144")

	// Model: the paper's weak scaling run (Figure 6a).
	fmt.Println("\n== modelled weak scaling: 4,096 SSets per processor, memory-six (Figure 6a) ==")
	weakP, err := evogame.PredictWeakScaling(opts, 4096, 4096, 6, []int{1024, 4096, 16384, 65536, 294912})
	if err != nil {
		log.Fatal(err)
	}
	optsQ := opts
	optsQ.Machine = evogame.MachineBlueGeneQ
	weakQ, err := evogame.PredictWeakScaling(optsQ, 4096, 4096, 6, []int{1024, 4096, 16384})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine   processors   sec/generation   efficiency(%)")
	for _, p := range weakP {
		fmt.Printf("BG/P      %10d   %14.3f   %13.2f\n", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	for _, p := range weakQ {
		fmt.Printf("BG/Q      %10d   %14.3f   %13.2f\n", p.Processors, p.SecondsPerGeneration, p.EfficiencyPercent)
	}
	fmt.Println("paper: >=99% weak scaling efficiency at every measured scale")

	// Model: the SSets-per-processor ratio cliff (Table VI).
	fmt.Println("\n== modelled SSets-per-processor ratio (Table VI) ==")
	rows, err := evogame.RatioTable(opts, []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8}, 2048, 6, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("R (SSets/proc)   efficiency(%)")
	for _, r := range rows {
		fmt.Printf("%14.1f   %13.1f\n", r.Ratio, r.EfficiencyPercent)
	}
	fmt.Println("paper: 50/55% at R<=1, >=99.7% once each processor holds at least two SSets")

	// Memory capacity: reproduce the "memory-six is the limit" argument.
	fmt.Println("\n== memory capacity (Section V-C) ==")
	capacity, err := evogame.CheckMemoryCapacity(evogame.MachineBlueGeneP, 32768, 1024)
	if err != nil {
		log.Fatal(err)
	}
	stratBytes, _ := evogame.StrategyBytes(6)
	fmt.Printf("a memory-six strategy occupies %d bytes; on 1,024 Blue Gene/P processors the largest\n", stratBytes)
	fmt.Printf("population that fits is %d SSets and the deepest memory that fits is memory-%d\n",
		capacity.MaxTotalSSets, capacity.MaxMemorySteps)
}
