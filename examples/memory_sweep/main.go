// Memory sweep: the Figure 5 workload.  The same population is simulated
// with memory-one through memory-six strategies on the distributed engine —
// -replicates independent replicates per depth through the ensemble tier,
// the way the paper averages its figures — and the per-rank compute and
// communication times are reported as mean ± std over replicates, showing
// how the cost of identifying the game state grows with memory depth while
// communication stays flat.  The Blue Gene/P prediction for the paper's
// full-size workload is printed alongside.
//
//	go run ./examples/memory_sweep
//	go run ./examples/memory_sweep -replicates 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"evogame"
)

// meanStd returns the sample mean and standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// sweepDepth runs one memory depth as an ensemble of replicates and reports
// the per-replicate compute/comm/wallclock means and standard deviations.
func sweepDepth(mem, ssets, ranks, generations, replicates, optLevel int) (computeM, computeS, commM, commS, wallM, wallS float64, games int64, err error) {
	res, err := evogame.RunEnsemble(context.Background(), evogame.EnsembleConfig{
		Replicates: replicates,
		Parallel: &evogame.ParallelConfig{
			Ranks:             ranks,
			NumSSets:          ssets,
			AgentsPerSSet:     4,
			MemorySteps:       mem,
			Rounds:            evogame.DefaultRounds,
			PCRate:            0.1,
			MutationRate:      0.05,
			Generations:       generations,
			Seed:              2013,
			OptimizationLevel: optLevel,
		},
	})
	if err != nil {
		return 0, 0, 0, 0, 0, 0, 0, err
	}
	var compute, comm, wall []float64
	for _, r := range res.Parallel {
		compute = append(compute, r.ComputeSeconds)
		comm = append(comm, r.CommSeconds)
		wall = append(wall, r.WallClockSeconds)
		games += r.TotalGames
	}
	computeM, computeS = meanStd(compute)
	commM, commS = meanStd(comm)
	wallM, wallS = meanStd(wall)
	return computeM, computeS, commM, commS, wallM, wallS, games, nil
}

func main() {
	ssets := flag.Int("ssets", 48, "number of Strategy Sets")
	ranks := flag.Int("ranks", 5, "total ranks (Nature + SSet ranks)")
	generations := flag.Int("generations", 10, "generations per memory depth")
	replicates := flag.Int("replicates", 3, "independent replicates per memory depth (ensemble tier)")
	flag.Parse()

	fmt.Printf("distributed runs: %d SSets, %d ranks, %d generations, %d replicates, 200 rounds/game\n\n",
		*ssets, *ranks, *generations, *replicates)
	fmt.Println("memory    compute(s)        comm(s)           wallclock(s)      games")
	for mem := 1; mem <= evogame.MaxMemorySteps; mem++ {
		cm, cs, mm, ms, wm, ws, games, err := sweepDepth(mem, *ssets, *ranks, *generations, *replicates, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d   %7.3f ±%6.3f   %6.4f ±%6.4f   %7.3f ±%6.3f   %d\n",
			mem, cm, cs, mm, ms, wm, ws, games)
	}

	// The paper attributes the growth in runtime with memory depth to
	// identifying the current game state.  The optimized kernel above uses
	// an O(1) rolling state code, which flattens that growth; replaying the
	// sweep with the paper's original linear state search (optimization
	// level 1) makes the effect visible.  Memory five and six are skipped —
	// the 4,096-row search makes them impractically slow, which is itself
	// the paper's point.
	fmt.Println("\nsame sweep with the original linear state search (optimization level 1), memory 1..4:")
	fmt.Println("memory    compute(s)        comm(s)           wallclock(s)")
	for mem := 1; mem <= 4; mem++ {
		cm, cs, mm, ms, wm, ws, _, err := sweepDepth(mem, *ssets, *ranks, *generations, *replicates, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d   %7.3f ±%6.3f   %6.4f ±%6.4f   %7.3f ±%6.3f\n",
			mem, cm, cs, mm, ms, wm, ws)
	}

	fmt.Println("\nBlue Gene/P model for the paper's workload (2,048 SSets, 20 generations, 2,048 processors):")
	points, err := evogame.MemorySweep(evogame.ScalingOptions{}, 2048, 20, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory   compute(s)   comm(s)")
	for _, p := range points {
		fmt.Printf("%6d   %10.3f   %8.5f\n", p.MemorySteps, p.ComputeSeconds, p.CommSeconds)
	}
	fmt.Println("\npaper (Figure 5): runtime rises with memory depth and is dominated by computation;")
	fmt.Println("the rise comes from identifying the current state, not from the larger strategy table")
}
