// Memory sweep: the Figure 5 workload.  The same population is simulated
// with memory-one through memory-six strategies on the distributed engine,
// and the per-rank compute and communication times are reported, showing
// how the cost of identifying the game state grows with memory depth while
// communication stays flat.  The Blue Gene/P prediction for the paper's
// full-size workload is printed alongside.
//
//	go run ./examples/memory_sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"evogame"
)

func main() {
	ssets := flag.Int("ssets", 48, "number of Strategy Sets")
	ranks := flag.Int("ranks", 5, "total ranks (Nature + SSet ranks)")
	generations := flag.Int("generations", 10, "generations per memory depth")
	flag.Parse()

	fmt.Printf("distributed runs: %d SSets, %d ranks, %d generations, 200 rounds/game\n\n",
		*ssets, *ranks, *generations)
	fmt.Println("memory   compute(s)   comm(s)   wallclock(s)   games")
	for mem := 1; mem <= evogame.MaxMemorySteps; mem++ {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks:             *ranks,
			NumSSets:          *ssets,
			AgentsPerSSet:     4,
			MemorySteps:       mem,
			Rounds:            evogame.DefaultRounds,
			PCRate:            0.1,
			MutationRate:      0.05,
			Generations:       *generations,
			Seed:              2013,
			OptimizationLevel: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d   %10.3f   %7.4f   %12.3f   %d\n",
			mem, res.ComputeSeconds, res.CommSeconds, res.WallClockSeconds, res.TotalGames)
	}

	// The paper attributes the growth in runtime with memory depth to
	// identifying the current game state.  The optimized kernel above uses
	// an O(1) rolling state code, which flattens that growth; replaying the
	// sweep with the paper's original linear state search (optimization
	// level 1) makes the effect visible.  Memory five and six are skipped —
	// the 4,096-row search makes them impractically slow, which is itself
	// the paper's point.
	fmt.Println("\nsame sweep with the original linear state search (optimization level 1), memory 1..4:")
	fmt.Println("memory   compute(s)   comm(s)   wallclock(s)")
	for mem := 1; mem <= 4; mem++ {
		res, err := evogame.SimulateParallel(evogame.ParallelConfig{
			Ranks:             *ranks,
			NumSSets:          *ssets,
			AgentsPerSSet:     4,
			MemorySteps:       mem,
			Rounds:            evogame.DefaultRounds,
			PCRate:            0.1,
			MutationRate:      0.05,
			Generations:       *generations,
			Seed:              2013,
			OptimizationLevel: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d   %10.3f   %7.4f   %12.3f\n",
			mem, res.ComputeSeconds, res.CommSeconds, res.WallClockSeconds)
	}

	fmt.Println("\nBlue Gene/P model for the paper's workload (2,048 SSets, 20 generations, 2,048 processors):")
	points, err := evogame.MemorySweep(evogame.ScalingOptions{}, 2048, 20, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory   compute(s)   comm(s)")
	for _, p := range points {
		fmt.Printf("%6d   %10.3f   %8.5f\n", p.MemorySteps, p.ComputeSeconds, p.CommSeconds)
	}
	fmt.Println("\npaper (Figure 5): runtime rises with memory depth and is dominated by computation;")
	fmt.Println("the rise comes from identifying the current state, not from the larger strategy table")
}
