// Memory sweep: the Figure 5 workload.  The grid comes from the paperkit
// artifact registry (internal/artifact), so this example times exactly the
// runs whose deterministic outcomes are pinned under artifacts/tables/ —
// each memory depth is an ensemble of replicates on the distributed engine,
// and the per-rank compute and communication times are reported as
// mean ± std over replicates, showing how the cost of identifying the game
// state grows with memory depth while communication stays flat.  The Blue
// Gene/P prediction for the paper's full-size workload is printed alongside.
//
//	go run ./examples/memory_sweep          # the full registry grid
//	go run ./examples/memory_sweep -quick   # the small committed grid
package main

import (
	"flag"
	"fmt"
	"log"

	"evogame"
	"evogame/internal/artifact"
	"evogame/internal/ensemble"
	"evogame/internal/stats"
)

// timeCell runs one registry cell as an ensemble and reports the
// per-replicate compute/comm/wallclock aggregates and the total game count.
func timeCell(cell artifact.Cell) (compute, comm, wall stats.Welford, games int64, err error) {
	res, err := ensemble.RunParallel(*cell.Parallel, ensemble.Config{Replicates: cell.Replicates})
	if err != nil {
		return compute, comm, wall, 0, err
	}
	for _, r := range res.Runs {
		compute.Add(r.ComputeTime().Seconds())
		comm.Add(r.CommTime().Seconds())
		wall.Add(r.WallClock.Seconds())
		games += r.TotalGames
	}
	return compute, comm, wall, games, nil
}

func main() {
	quick := flag.Bool("quick", false, "time the small committed grid instead of the full one")
	flag.Parse()

	sweep, err := artifact.Lookup("memory_sweep")
	if err != nil {
		log.Fatal(err)
	}
	cells := sweep.Grid(*quick)
	first := cells[0].Parallel
	fmt.Printf("registry artifact %q, %s grid: %d SSets, %d ranks, %d generations, %d replicates, %d rounds/game\n\n",
		sweep.Name, artifact.GridName(*quick), first.NumSSets, first.Ranks,
		cells[0].Generations, cells[0].Replicates, first.Rounds)
	fmt.Println("cell      compute(s)        comm(s)           wallclock(s)      games")
	for _, cell := range cells {
		compute, comm, wall, games, err := timeCell(cell)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s  %7.3f ±%6.3f   %6.4f ±%6.4f   %7.3f ±%6.3f   %d\n",
			cell.Key, compute.Mean(), compute.StdDev(), comm.Mean(), comm.StdDev(),
			wall.Mean(), wall.StdDev(), games)
	}

	// The paper attributes the growth in runtime with memory depth to
	// identifying the current game state.  The optimized kernel above uses
	// an O(1) rolling state code, which flattens that growth; replaying the
	// sweep with the paper's original linear state search (optimization
	// level 1) makes the effect visible.  Depths past four are skipped — the
	// 4,096-row search makes them impractically slow, which is itself the
	// paper's point.
	fmt.Println("\nsame grid with the original linear state search (optimization level 1), memory 1..4:")
	fmt.Println("cell      compute(s)        comm(s)           wallclock(s)")
	for _, cell := range cells {
		if cell.Parallel.MemorySteps > 4 {
			continue
		}
		downgraded := cell
		cfg := *cell.Parallel
		cfg.OptLevel = 1
		downgraded.Parallel = &cfg
		compute, comm, wall, _, err := timeCell(downgraded)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s  %7.3f ±%6.3f   %6.4f ±%6.4f   %7.3f ±%6.3f\n",
			cell.Key, compute.Mean(), compute.StdDev(), comm.Mean(), comm.StdDev(),
			wall.Mean(), wall.StdDev())
	}

	fmt.Println("\nBlue Gene/P model for the paper's workload (2,048 SSets, 20 generations, 2,048 processors):")
	points, err := evogame.MemorySweep(evogame.ScalingOptions{}, 2048, 20, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory   compute(s)   comm(s)")
	for _, p := range points {
		fmt.Printf("%6d   %10.3f   %8.5f\n", p.MemorySteps, p.ComputeSeconds, p.CommSeconds)
	}
	fmt.Println("\npaper (Figure 5): runtime rises with memory depth and is dominated by computation;")
	fmt.Println("the rise comes from identifying the current state, not from the larger strategy table")
}
