// WSLS emergence: a scaled-down version of the paper's Figure 2 validation
// study.  A population of Strategy Sets starts from uniformly random
// memory-one strategies and evolves with execution errors; over time the
// population is taken over by cooperative strategies, with Win-Stay
// Lose-Shift the expected winner (Nowak & Sigmund 1993, reproduced by the
// paper with 85% WSLS after 10^7 generations of a 5,000-SSet population).
//
//	go run ./examples/wsls_emergence            # ~1 minute
//	go run ./examples/wsls_emergence -long      # closer to the paper's run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"evogame"
)

func main() {
	long := flag.Bool("long", false, "run a longer population (slower, closer to the paper)")
	ssetsFlag := flag.Int("ssets", 0, "override the number of Strategy Sets (0 = preset)")
	gensFlag := flag.Int("generations", 0, "override the number of generations (0 = preset)")
	flag.Parse()

	ssets, generations := 128, 60000
	if *long {
		ssets, generations = 500, 400000
	}
	if *ssetsFlag > 0 {
		ssets = *ssetsFlag
	}
	if *gensFlag > 0 {
		generations = *gensFlag
	}

	cfg := evogame.SimulationConfig{
		NumSSets:      ssets,
		AgentsPerSSet: 4,
		MemorySteps:   1,
		Rounds:        evogame.DefaultRounds,
		Noise:         0.05, // execution errors are what make WSLS beat TFT
		PCRate:        1.0,  // one learning event per generation so the scaled-down run converges
		MutationRate:  0.05,
		Beta:          1.0,
		Generations:   generations,
		Seed:          1993,
		SampleEvery:   generations / 10,
	}

	fmt.Printf("evolving %d SSets (%d agents) of random memory-one strategies for %d generations...\n",
		cfg.NumSSets, cfg.NumSSets*cfg.AgentsPerSSet, cfg.Generations)
	//lint:allow randsource wall-clock elapsed time for the run summary; never feeds simulation state
	start := time.Now()
	res, err := evogame.Simulate(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %.1fs (%d games)\n\n", time.Since(start).Seconds(), res.GamesPlayed)

	fmt.Println("generation   distinct   top strategy   top%    WSLS%   TFT%   ALLD%")
	for _, s := range res.Samples {
		fmt.Printf("%10d   %8d   %-12s %5.1f   %5.1f   %4.1f   %5.1f\n",
			s.Generation, s.DistinctStrategies, s.TopStrategy,
			100*s.TopFraction, 100*s.WSLSFraction, 100*s.TFTFraction, 100*s.AllDFraction)
	}

	// Cluster the final population as in Figure 2 so prevalent strategies
	// stand out.
	clusters, err := evogame.ClusterStrategies(res.FinalStrategies, 4, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal population clustered with Lloyd k-means (k=4):")
	for i, c := range clusters {
		fmt.Printf("  cluster %d: %3d SSets (%5.1f%%), representative strategy %s, per-state defection %v\n",
			i, c.Size, 100*c.Fraction, c.Representative, roundAll(c.Centroid))
	}

	wsls, _ := evogame.NamedStrategy("wsls", 1)
	fmt.Printf("\ncanonical WSLS is %s; final WSLS share: %.1f%% (paper: 85%% after 10^7 generations)\n",
		wsls, 100*res.WSLSFraction())
}

func roundAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}
