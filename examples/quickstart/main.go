// Quickstart: run a small evolutionary game dynamics simulation with the
// serial engine, then repeat it with the distributed engine and check that
// both produce exactly the same population history.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"evogame"
)

func main() {
	ssets := flag.Int("ssets", 32, "number of Strategy Sets")
	generations := flag.Int("generations", 2000, "generations to simulate")
	flag.Parse()

	// A small memory-one population: 32 Strategy Sets of 4 agents each,
	// evolving for 2,000 generations under the paper's standard parameters
	// (200 rounds per game, 10% pairwise-comparison rate, 5% mutation rate).
	cfg := evogame.SimulationConfig{
		NumSSets:      *ssets,
		AgentsPerSSet: 4,
		MemorySteps:   1,
		Rounds:        evogame.DefaultRounds,
		Noise:         0.05,
		PCRate:        0.1,
		MutationRate:  0.05,
		Beta:          1.0,
		Generations:   *generations,
		Seed:          42,
		SampleEvery:   *generations / 4,
	}

	fmt.Println("== serial reference engine ==")
	serial, err := evogame.Simulate(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range serial.Samples {
		fmt.Printf("generation %6d: %2d distinct strategies, top %q holds %4.1f%%, WSLS %4.1f%%\n",
			s.Generation, s.DistinctStrategies, s.TopStrategy, 100*s.TopFraction, 100*s.WSLSFraction)
	}
	fmt.Printf("events: %d comparisons, %d adoptions, %d mutations, %d games played\n",
		serial.PCEvents, serial.Adoptions, serial.Mutations, serial.GamesPlayed)

	// The same dynamics on the distributed engine (1 Nature rank + 4 SSet
	// ranks).  With a noiseless configuration the two engines are
	// bit-for-bit identical; with noise they still follow the same event
	// sequence.  Here we rerun the noiseless variant to demonstrate the
	// equivalence.
	fmt.Println("\n== distributed engine (5 ranks) ==")
	noiseless := cfg
	noiseless.Noise = 0
	noiseless.Generations = *generations / 4
	if noiseless.Generations == 0 {
		noiseless.Generations = 1
	}
	// The serial reference uses incremental fitness evaluation: noiseless
	// games between deterministic strategies are pure functions of the
	// strategy pair, so the engine replays only pairs it has never seen —
	// with bit-identical results to full replay.
	noiseless.EvalMode = evogame.EvalIncremental
	serialRef, err := evogame.Simulate(context.Background(), noiseless)
	if err != nil {
		log.Fatal(err)
	}
	par, err := evogame.SimulateParallel(evogame.ParallelConfig{
		Ranks:             5,
		NumSSets:          noiseless.NumSSets,
		AgentsPerSSet:     noiseless.AgentsPerSSet,
		MemorySteps:       noiseless.MemorySteps,
		Rounds:            noiseless.Rounds,
		PCRate:            noiseless.PCRate,
		MutationRate:      noiseless.MutationRate,
		Beta:              noiseless.Beta,
		Generations:       noiseless.Generations,
		Seed:              noiseless.Seed,
		OptimizationLevel: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(par.FinalStrategies) == len(serialRef.FinalStrategies)
	for i := range par.FinalStrategies {
		if par.FinalStrategies[i] != serialRef.FinalStrategies[i] {
			same = false
			break
		}
	}
	fmt.Printf("wallclock %.3fs, %d games across %d ranks, mean compute %.3fs, mean comm %.3fs\n",
		par.WallClockSeconds, par.TotalGames, len(par.Ranks), par.ComputeSeconds, par.CommSeconds)
	fmt.Printf("distributed full-replay result identical to serial incremental reference: %v\n", same)
	fmt.Printf("incremental evaluation played %d games where full replay played %d\n",
		serialRef.GamesPlayed, par.TotalGames)

	// Strategy helpers: the canonical strategies as move-table strings.
	for _, name := range []string{"allc", "alld", "tft", "wsls", "grim"} {
		table, err := evogame.NamedStrategy(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("memory-one %-5s = %s\n", name, table)
	}
}
