package evogame

// Smoke tests for the command-line programs and examples: every main under
// cmd/ and examples/ must build and complete a brief run.  This catches
// example drift (mains that no longer compile against the facade, or that
// fail at startup) in CI without paying for the full default workloads.

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"evogame/internal/checkpoint"
)

// smokeTargets lists every main package with the arguments of a brief run.
var smokeTargets = []struct {
	name string
	dir  string
	args []string
}{
	{"evogame-serial", "./cmd/evogame", []string{
		"-ssets", "12", "-agents", "2", "-rounds", "20", "-generations", "40",
		"-sample-every", "20", "-noise", "0", "-eval", "incremental", "-clusters", "2"}},
	{"evogame-parallel", "./cmd/evogame", []string{
		"-parallel", "-ranks", "3", "-ssets", "12", "-agents", "2", "-rounds", "20",
		"-generations", "20", "-noise", "0", "-eval", "cached"}},
	{"evogame-scenario", "./cmd/evogame", []string{
		"-game", "snowdrift", "-rule", "moran", "-ssets", "12", "-agents", "2",
		"-rounds", "20", "-generations", "40", "-noise", "0", "-eval", "incremental"}},
	{"evogame-topology", "./cmd/evogame", []string{
		"-topology", "torus:moore", "-ssets", "16", "-agents", "2", "-rounds", "20",
		"-generations", "40", "-noise", "0", "-eval", "incremental"}},
	{"validate", "./cmd/validate", []string{
		"-ssets", "12", "-agents", "2", "-generations", "200", "-k", "2"}},
	{"benchtables", "./cmd/benchtables", []string{"-table", "4"}},
	{"quickstart", "./examples/quickstart", []string{"-ssets", "12", "-generations", "200"}},
	{"axelrod_tournament", "./examples/axelrod_tournament", nil},
	{"evogame-ensemble", "./cmd/evogame", []string{
		"-replicates", "3", "-ensemble-workers", "2", "-ssets", "12", "-agents", "2",
		"-rounds", "20", "-generations", "30", "-sample-every", "15", "-noise", "0",
		"-eval", "cached"}},
	{"memory_sweep", "./examples/memory_sweep", []string{"-quick"}},
	{"scaling_study", "./examples/scaling_study", []string{"-quick"}},
	{"evolint-list", "./cmd/evolint", []string{"-list"}},
	{"paperkit-list", "./cmd/paperkit", []string{"list"}},
	{"paperkit-status", "./cmd/paperkit", []string{"status", "-quick"}},
	// Verify re-renders the committed quick-grid tables from the committed
	// run envelopes and fails on any byte difference — the repository's own
	// regenerability gate, exercised on every push.
	{"paperkit-verify", "./cmd/paperkit", []string{"verify", "-quick"}},
	{"snowdrift", "./examples/snowdrift", []string{
		"-ssets", "16", "-generations", "400", "-seeds", "2"}},
	{"lattice_cooperation", "./examples/lattice_cooperation", []string{
		"-ssets", "16", "-generations", "400", "-seeds", "1"}},
	{"wsls_emergence", "./examples/wsls_emergence", []string{
		"-ssets", "16", "-generations", "500"}},
}

func TestSmokeMains(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs of cmd/ and examples/ skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	binDir := t.TempDir()

	built := make(map[string]string)
	for _, target := range smokeTargets {
		if _, ok := built[target.dir]; ok {
			continue
		}
		out := filepath.Join(binDir, filepath.Base(target.dir))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		cmd := exec.CommandContext(ctx, goBin, "build", "-o", out, target.dir)
		output, err := cmd.CombinedOutput()
		cancel()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", target.dir, err, output)
		}
		built[target.dir] = out
	}

	for _, target := range smokeTargets {
		target := target
		t.Run(target.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, built[target.dir], target.args...)
			output, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("%s %v timed out", target.dir, target.args)
			}
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", target.dir, target.args, err, output)
			}
			if len(output) == 0 {
				t.Fatalf("%s produced no output", target.dir)
			}
		})
	}

	t.Run("checkpoint-resume", func(t *testing.T) {
		smokeCheckpointResume(t, built["./cmd/evogame"])
	})
}

// smokeCheckpointResume enforces the CLI resume guarantee on every push: a
// run interrupted at N/2 (the first half runs with -ckpt-every and stops,
// exactly what a killed run leaves on disk) and resumed with -resume must
// end bit-identical to an uninterrupted run of N generations, in both
// engines.  The comparison reads the final checkpoints, which also
// exercises the engine-written (typed, correct-generation) snapshot path.
func smokeCheckpointResume(t *testing.T, bin string) {
	runCLI := func(args ...string) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		cmd := exec.CommandContext(ctx, bin, args...)
		output, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, output)
		}
	}
	for _, mode := range []struct {
		name  string
		extra []string
	}{
		{"serial", nil},
		{"parallel", []string{"-parallel", "-ranks", "3"}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			full := filepath.Join(dir, "full.ckpt")
			half := filepath.Join(dir, "half.ckpt")
			resumed := filepath.Join(dir, "resumed.ckpt")
			base := append([]string{
				"-ssets", "12", "-agents", "2", "-rounds", "20", "-noise", "0.05",
				"-seed", "11", "-topology", "ring:4",
			}, mode.extra...)

			runCLI(append(append([]string{}, base...), "-generations", "60", "-checkpoint", full)...)
			runCLI(append(append([]string{}, base...), "-generations", "30", "-ckpt-every", "10", "-checkpoint", half)...)
			runCLI(append(append([]string{}, base...), "-resume", half, "-generations", "30", "-checkpoint", resumed)...)

			want, err := checkpoint.Load(full)
			if err != nil {
				t.Fatal(err)
			}
			got, err := checkpoint.Load(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if got.Generation != 60 || want.Generation != 60 {
				t.Fatalf("generations: resumed %d, uninterrupted %d, want 60", got.Generation, want.Generation)
			}
			if len(got.Strategies) != len(want.Strategies) {
				t.Fatalf("table length %d vs %d", len(got.Strategies), len(want.Strategies))
			}
			for i := range want.Strategies {
				if !want.Strategies[i].Equal(got.Strategies[i]) {
					t.Fatalf("strategy %d diverged between interrupted+resumed and uninterrupted runs", i)
				}
			}
			if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
				t.Fatalf("event trace diverged: [%d %d %d] vs [%d %d %d]",
					got.PCEvents, got.Adoptions, got.Mutations, want.PCEvents, want.Adoptions, want.Mutations)
			}
		})
	}
}
