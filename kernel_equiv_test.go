package evogame

// Kernel-mode equivalence: the cycle-closing fast path must be invisible in
// every observable except wall clock.  These tests run the same seeds with
// the kernel knob on and off, across both engines, eval modes, a structured
// topology and a noisy configuration, and require identical trajectories
// and event counts.  (The golden trajectories of golden_test.go pin the
// default-on fast path to the recorded history as well.)

import (
	"context"
	"strings"
	"testing"
)

func TestKernelModesBitIdenticalSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  SimulationConfig
	}{
		{"full-eval", SimulationConfig{
			NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 40,
			PCRate: 1, MutationRate: 0.25, Beta: 1, Generations: 150, Seed: 11,
		}},
		{"incremental-ring", SimulationConfig{
			NumSSets: 24, AgentsPerSSet: 2, MemorySteps: 2, Rounds: 60,
			PCRate: 1, MutationRate: 0.2, Beta: 1, Generations: 120, Seed: 5,
			EvalMode: EvalIncremental, Topology: "ring:4",
		}},
		{"noisy", SimulationConfig{
			NumSSets: 16, AgentsPerSSet: 2, MemorySteps: 1, Rounds: 30,
			Noise: 0.05, PCRate: 1, MutationRate: 0.2, Beta: 1, Generations: 80, Seed: 3,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.cfg
			base.Kernel = "full-replay"
			want, err := Simulate(context.Background(), base)
			if err != nil {
				t.Fatal(err)
			}
			for _, kernel := range []string{"auto", "batch"} {
				fast := tc.cfg
				fast.Kernel = kernel
				got, err := Simulate(context.Background(), fast)
				if err != nil {
					t.Fatal(err)
				}
				if strings.Join(got.FinalStrategies, ",") != strings.Join(want.FinalStrategies, ",") {
					t.Fatalf("kernel modes diverged:\n%-11s %v\nfull-replay %v",
						kernel, got.FinalStrategies, want.FinalStrategies)
				}
				if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions ||
					got.Mutations != want.Mutations || got.GamesPlayed != want.GamesPlayed {
					t.Fatalf("event counts diverged: %s %d/%d/%d games %d, full-replay %d/%d/%d games %d",
						kernel, got.PCEvents, got.Adoptions, got.Mutations, got.GamesPlayed,
						want.PCEvents, want.Adoptions, want.Mutations, want.GamesPlayed)
				}
			}
		})
	}
}

func TestKernelModesBitIdenticalParallel(t *testing.T) {
	for _, mode := range []EvalMode{EvalFull, EvalIncremental} {
		cfg := ParallelConfig{
			Ranks: 4, OptimizationLevel: 3, NumSSets: 24, AgentsPerSSet: 2,
			MemorySteps: 1, Rounds: 40, PCRate: 1, MutationRate: 0.25, Beta: 1,
			Generations: 120, Seed: 777, EvalMode: mode,
		}
		cfg.Kernel = "full-replay"
		want, err := SimulateParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, kernel := range []string{"auto", "batch"} {
			cfg.Kernel = kernel
			got, err := SimulateParallel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(got.FinalStrategies, ",") != strings.Join(want.FinalStrategies, ",") {
				t.Fatalf("eval %v kernel %s: parallel kernel modes diverged", mode, kernel)
			}
			if got.PCEvents != want.PCEvents || got.Adoptions != want.Adoptions || got.Mutations != want.Mutations {
				t.Fatalf("eval %v kernel %s: parallel event counts diverged", mode, kernel)
			}
		}
	}
}

func TestKernelModeValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), SimulationConfig{
		NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 10,
		Generations: 1, Kernel: "bogus",
	}); err == nil {
		t.Fatal("serial engine accepted an unknown kernel mode")
	}
	if _, err := SimulateParallel(ParallelConfig{
		Ranks: 2, NumSSets: 4, AgentsPerSSet: 1, MemorySteps: 1, Rounds: 10,
		Generations: 1, Kernel: "bogus",
	}); err == nil {
		t.Fatal("parallel engine accepted an unknown kernel mode")
	}
	modes := KernelModes()
	if len(modes) != 3 || modes[0] != "auto" || modes[1] != "full-replay" || modes[2] != "batch" {
		t.Fatalf("KernelModes() = %v", modes)
	}
}
